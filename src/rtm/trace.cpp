#include "rtm/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace ptherm::rtm {

WorkloadTrace::WorkloadTrace(std::size_t block_count, double sample_dt)
    : block_count_(block_count), sample_dt_(sample_dt) {
  PTHERM_REQUIRE(block_count > 0, "WorkloadTrace: need at least one block");
  PTHERM_REQUIRE(sample_dt > 0.0, "WorkloadTrace: sample_dt must be positive");
}

void WorkloadTrace::append(std::span<const double> activities) {
  PTHERM_REQUIRE(block_count_ > 0, "WorkloadTrace::append: default-constructed trace");
  PTHERM_REQUIRE(activities.size() == block_count_,
                 "WorkloadTrace::append: one activity per block required");
  for (double a : activities) {
    PTHERM_REQUIRE(std::isfinite(a) && a >= 0.0,
                   "WorkloadTrace::append: activity must be finite and >= 0");
  }
  samples_.insert(samples_.end(), activities.begin(), activities.end());
}

double WorkloadTrace::activity(std::size_t sample, std::size_t block) const {
  PTHERM_REQUIRE(block < block_count_, "WorkloadTrace::activity: block out of range");
  PTHERM_REQUIRE(sample < sample_count(), "WorkloadTrace::activity: sample out of range");
  return samples_[sample * block_count_ + block];
}

double WorkloadTrace::activity_at(std::size_t block, double t) const {
  PTHERM_REQUIRE(block < block_count_, "WorkloadTrace::activity_at: block out of range");
  const std::size_t count = sample_count();
  PTHERM_REQUIRE(count > 0, "WorkloadTrace::activity_at: empty trace");
  std::size_t sample = 0;
  if (t > 0.0) {
    const double f = std::floor(t / sample_dt_);
    sample = f >= static_cast<double>(count - 1) ? count - 1 : static_cast<std::size_t>(f);
  }
  return samples_[sample * block_count_ + block];
}

// ----------------------------------------------------------- generators ---

WorkloadTrace make_burst_trace(std::size_t blocks, std::size_t samples, double sample_dt,
                               const BurstPattern& pattern) {
  PTHERM_REQUIRE(pattern.period > 0.0, "make_burst_trace: period must be positive");
  PTHERM_REQUIRE(pattern.duty >= 0.0 && pattern.duty <= 1.0,
                 "make_burst_trace: duty must lie in [0, 1]");
  PTHERM_REQUIRE(pattern.high >= 0.0 && pattern.low >= 0.0,
                 "make_burst_trace: activities must be >= 0");
  WorkloadTrace trace(blocks, sample_dt);
  std::vector<double> row(blocks);
  for (std::size_t s = 0; s < samples; ++s) {
    const double t = static_cast<double>(s) * sample_dt;
    for (std::size_t b = 0; b < blocks; ++b) {
      // Per-block phase shift, wrapped into [0, period).
      const double shifted = t - static_cast<double>(b) * pattern.phase_step * pattern.period;
      const double phase =
          shifted - pattern.period * std::floor(shifted / pattern.period);
      row[b] = phase < pattern.duty * pattern.period ? pattern.high : pattern.low;
    }
    trace.append(row);
  }
  return trace;
}

WorkloadTrace make_random_walk_trace(std::size_t blocks, std::size_t samples,
                                     double sample_dt, const RandomWalkPattern& pattern,
                                     Rng& rng) {
  PTHERM_REQUIRE(pattern.floor >= 0.0 && pattern.ceil > pattern.floor,
                 "make_random_walk_trace: need 0 <= floor < ceil");
  PTHERM_REQUIRE(pattern.start >= pattern.floor && pattern.start <= pattern.ceil,
                 "make_random_walk_trace: start outside [floor, ceil]");
  PTHERM_REQUIRE(pattern.step >= 0.0, "make_random_walk_trace: step must be >= 0");
  WorkloadTrace trace(blocks, sample_dt);
  std::vector<double> level(blocks, pattern.start);
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t b = 0; b < blocks; ++b) {
      double next = level[b] + rng.uniform(-pattern.step, pattern.step);
      // Reflect off the bounds so the walk hugs neither rail.
      if (next > pattern.ceil) next = 2.0 * pattern.ceil - next;
      if (next < pattern.floor) next = 2.0 * pattern.floor - next;
      level[b] = std::clamp(next, pattern.floor, pattern.ceil);
    }
    trace.append(level);
  }
  return trace;
}

WorkloadTrace make_migration_trace(std::size_t blocks, std::size_t samples, double sample_dt,
                                   const MigrationPattern& pattern) {
  PTHERM_REQUIRE(pattern.dwell > 0.0, "make_migration_trace: dwell must be positive");
  PTHERM_REQUIRE(pattern.hot >= 0.0 && pattern.cold >= 0.0,
                 "make_migration_trace: activities must be >= 0");
  WorkloadTrace trace(blocks, sample_dt);
  std::vector<double> row(blocks);
  for (std::size_t s = 0; s < samples; ++s) {
    const double t = static_cast<double>(s) * sample_dt;
    const std::size_t hot_block =
        static_cast<std::size_t>(std::floor(t / pattern.dwell)) % blocks;
    for (std::size_t b = 0; b < blocks; ++b) {
      row[b] = b == hot_block ? pattern.hot : pattern.cold;
    }
    trace.append(row);
  }
  return trace;
}

// ------------------------------------------------------------- text I/O ---

namespace {

constexpr const char* kMagic = "ptherm-trace";
constexpr const char* kVersion = "v1";

[[noreturn]] void malformed(const std::string& what) {
  throw IoError("trace: malformed input: " + what);
}

/// Next non-comment token; empty optional at clean EOF.
bool next_token(std::istream& is, std::string& token) {
  while (is >> token) {
    if (token.front() == '#') {
      std::string rest;
      std::getline(is, rest);  // drop the remainder of the comment line
      continue;
    }
    return true;
  }
  return false;
}

std::string expect_token(std::istream& is, const char* context) {
  std::string token;
  if (!next_token(is, token)) {
    malformed("unexpected end of input, expected " + std::string(context));
  }
  return token;
}

double parse_double(const std::string& token, const std::string& context) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &used);
  } catch (const std::exception&) {
    malformed("'" + token + "' is not a number (" + context + ")");
  }
  if (used != token.size()) {
    malformed("'" + token + "' is not a number (" + context + ")");
  }
  return value;
}

std::size_t parse_count(const std::string& token, const std::string& context,
                        double minimum = 1.0) {
  const double value = parse_double(token, context);
  if (value < minimum || value != std::floor(value) || value > 1e9) {
    malformed("'" + token + "' is not a valid count (" + context + ")");
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

void write_trace(std::ostream& os, const WorkloadTrace& trace) {
  PTHERM_REQUIRE(trace.block_count() > 0, "write_trace: default-constructed trace");
  os << kMagic << ' ' << kVersion << '\n';
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "blocks " << trace.block_count() << '\n';
  os << "sample_dt " << trace.sample_dt() << '\n';
  os << "samples " << trace.sample_count() << '\n';
  for (std::size_t s = 0; s < trace.sample_count(); ++s) {
    for (std::size_t b = 0; b < trace.block_count(); ++b) {
      os << (b == 0 ? "" : " ") << trace.activity(s, b);
    }
    os << '\n';
  }
  if (!os) throw IoError("trace: write failed");
}

WorkloadTrace read_trace(std::istream& is) {
  if (expect_token(is, "header magic") != kMagic) malformed("missing 'ptherm-trace' header");
  const std::string version = expect_token(is, "format version");
  if (version != kVersion) malformed("unsupported version '" + version + "'");

  if (expect_token(is, "'blocks'") != "blocks") malformed("expected 'blocks <n>'");
  const std::size_t blocks = parse_count(expect_token(is, "block count"), "block count");
  if (expect_token(is, "'sample_dt'") != "sample_dt") malformed("expected 'sample_dt <s>'");
  const double sample_dt = parse_double(expect_token(is, "sample_dt value"), "sample_dt");
  if (!(sample_dt > 0.0)) malformed("sample_dt must be positive");
  if (expect_token(is, "'samples'") != "samples") malformed("expected 'samples <count>'");
  // Zero samples is a legal (if useless) trace — a validly constructed
  // WorkloadTrace with no appends must survive the round trip.
  const std::size_t samples =
      parse_count(expect_token(is, "sample count"), "sample count", 0.0);

  WorkloadTrace trace(blocks, sample_dt);
  std::vector<double> row(blocks);
  std::string token;
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t b = 0; b < blocks; ++b) {
      // Hot loop (traces can run to millions of values): parse in place and
      // only build the "sample s, block b" context when something is wrong.
      if (!next_token(is, token)) malformed("unexpected end of input, expected activity value");
      std::size_t used = 0;
      double a = 0.0;
      bool numeric = true;
      try {
        a = std::stod(token, &used);
      } catch (const std::exception&) {
        numeric = false;
      }
      if (!numeric || used != token.size() || !(std::isfinite(a) && a >= 0.0)) {
        std::ostringstream where;
        where << "'" << token << "' is not a valid activity (finite, >= 0) at sample " << s
              << ", block " << b;
        malformed(where.str());
      }
      row[b] = a;
    }
    trace.append(row);
  }
  std::string extra;
  if (next_token(is, extra)) malformed("trailing data after the declared samples");
  return trace;
}

void write_trace_file(const std::string& path, const WorkloadTrace& trace) {
  std::ofstream os(path);
  if (!os) throw IoError("trace: cannot open '" + path + "' for writing");
  write_trace(os, trace);
}

WorkloadTrace read_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("trace: cannot open '" + path + "' for reading");
  return read_trace(is);
}

}  // namespace ptherm::rtm
