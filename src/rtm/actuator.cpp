#include "rtm/actuator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "power/dynamic.hpp"

namespace ptherm::rtm {

VfLadder::VfLadder(std::vector<OperatingPoint> points) : points_(std::move(points)) {
  PTHERM_REQUIRE(!points_.empty(), "VfLadder: need at least one operating point");
  for (std::size_t i = 0; i < points_.size(); ++i) {
    PTHERM_REQUIRE(points_[i].voltage > 0.0 && points_[i].frequency > 0.0,
                   "VfLadder: voltage and frequency must be positive");
    if (i > 0) {
      PTHERM_REQUIRE(points_[i].frequency < points_[i - 1].frequency,
                     "VfLadder: frequencies must strictly decrease with level");
      PTHERM_REQUIRE(points_[i].voltage <= points_[i - 1].voltage,
                     "VfLadder: voltages must not increase with level");
    }
  }
}

VfLadder VfLadder::uniform(double v_nom, double f_nom, int levels, double v_min_fraction,
                           double f_min_fraction) {
  PTHERM_REQUIRE(levels >= 1, "VfLadder::uniform: need at least one level");
  PTHERM_REQUIRE(v_nom > 0.0 && f_nom > 0.0, "VfLadder::uniform: nominal point must be positive");
  PTHERM_REQUIRE(v_min_fraction > 0.0 && v_min_fraction <= 1.0 && f_min_fraction > 0.0 &&
                     f_min_fraction <= 1.0,
                 "VfLadder::uniform: fractions must lie in (0, 1]");
  if (levels > 1) {
    PTHERM_REQUIRE(f_min_fraction < 1.0,
                   "VfLadder::uniform: multiple levels need f_min_fraction < 1");
  }
  std::vector<OperatingPoint> points(static_cast<std::size_t>(levels));
  for (int l = 0; l < levels; ++l) {
    const double u = levels == 1 ? 0.0 : static_cast<double>(l) / (levels - 1);
    points[l].voltage = v_nom * (1.0 - u * (1.0 - v_min_fraction));
    points[l].frequency = f_nom * (1.0 - u * (1.0 - f_min_fraction));
  }
  return VfLadder(std::move(points));
}

const OperatingPoint& VfLadder::at(int level) const {
  PTHERM_REQUIRE(level >= 0 && level < level_count(), "VfLadder::at: level out of range");
  return points_[static_cast<std::size_t>(level)];
}

std::vector<double> VfLadder::speed_fractions() const {
  std::vector<double> fractions(points_.size());
  for (std::size_t l = 0; l < points_.size(); ++l) {
    fractions[l] = points_[l].frequency / points_[0].frequency;
  }
  return fractions;
}

Actuator::Actuator(device::Technology tech, floorplan::Floorplan fp, VfLadder ladder,
                   ActuatorOptions opts)
    : tech_(std::move(tech)),
      fp_(std::move(fp)),
      ladder_(std::move(ladder)),
      opts_(opts),
      levels_(fp_.blocks().size(), 0) {
  PTHERM_REQUIRE(!fp_.blocks().empty(), "Actuator: empty floorplan");
  const int nl = ladder_.level_count();
  scales_.resize(nl);
  speeds_.resize(nl);
  level_tech_.reserve(nl);
  // The per-level dynamic scale comes from the power/dynamic model itself:
  // transient_power is alpha f C VDD^2, so the ratio against level 0 is
  // exactly (V/V0)^2 (f/f0) — computed through the model so the actuator
  // and the power subsystem cannot drift apart.
  power::SwitchingContext ctx0;
  ctx0.frequency = ladder_.at(0).frequency;
  device::Technology t0 = tech_;
  t0.vdd = ladder_.at(0).voltage;
  const double p0 = power::transient_power(t0, ctx0);
  PTHERM_ASSERT(p0 > 0.0, "Actuator: degenerate nominal operating point");
  for (int l = 0; l < nl; ++l) {
    // The DIBL-consistent supply rewrite (see device::at_supply): at a lower
    // supply the OFF transistor sees less drain-induced barrier lowering, so
    // its effective threshold rises and leakage falls exponentially — the
    // voltage-dependent leakage the RTM loop feeds back.
    device::Technology tl = device::at_supply(tech_, ladder_.at(l).voltage);
    power::SwitchingContext ctx = ctx0;
    ctx.frequency = ladder_.at(l).frequency;
    scales_[l] = power::transient_power(tl, ctx) / p0;
    speeds_[l] = ladder_.at(l).frequency / ladder_.at(0).frequency;
    level_tech_.push_back(std::move(tl));
  }

  if (opts_.leakage_table_points > 0) {
    PTHERM_REQUIRE(opts_.leakage_table_points >= 2,
                   "Actuator: leakage table needs at least 2 points");
    PTHERM_REQUIRE(opts_.table_t_max > opts_.table_t_min,
                   "Actuator: leakage table window is empty");
    const std::size_t np = static_cast<std::size_t>(opts_.leakage_table_points);
    table_dt_ = (opts_.table_t_max - opts_.table_t_min) / static_cast<double>(np - 1);
    table_.resize(fp_.blocks().size() * static_cast<std::size_t>(nl) * np);
    // Tables are built at vb = 0; a biased query falls back to the exact
    // path (body bias is a study parameter, not a per-epoch variable).
    for (std::size_t b = 0; b < fp_.blocks().size(); ++b) {
      for (int l = 0; l < nl; ++l) {
        double* row = table_.data() + (b * static_cast<std::size_t>(nl) + l) * np;
        for (std::size_t p = 0; p < np; ++p) {
          const double temp = opts_.table_t_min + static_cast<double>(p) * table_dt_;
          row[p] = leakage_exact(b, l, temp, 0.0);
        }
      }
    }
  }
}

int Actuator::level(std::size_t block) const {
  PTHERM_REQUIRE(block < levels_.size(), "Actuator::level: block out of range");
  return levels_[block];
}

bool Actuator::set_level(std::size_t block, int lvl) {
  PTHERM_REQUIRE(block < levels_.size(), "Actuator::set_level: block out of range");
  const int clamped = std::clamp(lvl, 0, ladder_.level_count() - 1);
  if (clamped == levels_[block]) return false;
  levels_[block] = clamped;
  return true;
}

void Actuator::reset() { std::fill(levels_.begin(), levels_.end(), 0); }

double Actuator::dynamic_power(std::size_t block, double activity) const {
  PTHERM_REQUIRE(block < levels_.size(), "Actuator::dynamic_power: block out of range");
  PTHERM_REQUIRE(activity >= 0.0, "Actuator::dynamic_power: activity must be >= 0");
  return fp_.blocks()[block].p_dynamic * activity * scales_[levels_[block]];
}

double Actuator::leakage_exact(std::size_t block, int lvl, double temp, double vb) const {
  return fp_.blocks()[block].leakage_power(level_tech_[static_cast<std::size_t>(lvl)], temp,
                                           vb);
}

double Actuator::leakage_power(std::size_t block, double temp, double vb) const {
  PTHERM_REQUIRE(block < levels_.size(), "Actuator::leakage_power: block out of range");
  const int lvl = levels_[block];
  if (table_.empty() || vb != 0.0) return leakage_exact(block, lvl, temp, vb);
  const std::size_t np = static_cast<std::size_t>(opts_.leakage_table_points);
  const double* row =
      table_.data() +
      (block * static_cast<std::size_t>(ladder_.level_count()) + lvl) * np;
  const double f = std::clamp((temp - opts_.table_t_min) / table_dt_,
                              0.0, static_cast<double>(np - 1));
  const std::size_t i0 = std::min(static_cast<std::size_t>(f), np - 2);
  const double w = f - static_cast<double>(i0);
  return (1.0 - w) * row[i0] + w * row[i0 + 1];
}

double Actuator::throughput_scale(std::size_t block) const {
  PTHERM_REQUIRE(block < levels_.size(), "Actuator::throughput_scale: block out of range");
  return speeds_[levels_[block]];
}

double Actuator::dynamic_scale(int lvl) const {
  PTHERM_REQUIRE(lvl >= 0 && lvl < ladder_.level_count(),
                 "Actuator::dynamic_scale: level out of range");
  return scales_[static_cast<std::size_t>(lvl)];
}

}  // namespace ptherm::rtm
