// Control policies: sensed temperatures in, per-block V/f levels out, once
// per control epoch. The Policy interface is the plug-in point for custom
// governors; three reference implementations ship with the library:
//
//   NoopPolicy       leaves every block at level 0 — the uncontrolled
//                    baseline a study compares against.
//   ThresholdPolicy  reactive throttling with hysteresis: step a block
//                    slower when its sensed temperature crosses the trigger,
//                    step it faster again only once it cools past the
//                    release point (the gap prevents level chatter).
//   PidPolicy        a PID governor per block: regulates to a setpoint
//                    below the cap by mapping the control output to a
//                    continuous frequency fraction, then snapping to the
//                    nearest ladder level.
//
// Policies see SENSED temperatures (rtm/sensor.hpp); the plant integrates
// the true ones. Keep policies deterministic: the RTM driver guarantees
// bitwise-reproducible runs only if control() is a pure function of its
// inputs and the policy's own (reset) state.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace ptherm::rtm {

/// Fixed loop configuration handed to Policy::reset before a run.
struct PolicyContext {
  double temperature_cap = 0.0;   ///< the cap the study enforces [K]
  double t_sink = 0.0;            ///< heat-sink (ambient) temperature [K]
  double epoch_duration = 0.0;    ///< control period [s]
  int level_count = 1;            ///< ladder size; level 0 = fastest
  /// f_level / f_0 per level, descending from 1.0 (VfLadder::speed_fractions).
  std::vector<double> level_speed;
};

/// Per-epoch controller inputs.
struct PolicyInput {
  long long epoch = 0;               ///< control epoch index (0-based)
  double t = 0.0;                    ///< epoch start time [s]
  std::span<const double> temps;     ///< sensed block temperatures [K]
  std::span<const double> activity;  ///< requested per-block activity
};

class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Called once before a run; stores the context and clears controller
  /// state. Overrides must call the base.
  virtual void reset(const PolicyContext& ctx, std::size_t block_count);

  /// Writes the level each block runs at for the coming epoch into `levels`
  /// (current levels on entry, one per block). Out-of-range choices are
  /// clamped into the ladder by the driver.
  virtual void control(const PolicyInput& in, std::span<int> levels) = 0;

 protected:
  [[nodiscard]] const PolicyContext& context() const noexcept { return ctx_; }

 private:
  PolicyContext ctx_;
};

/// Never intervenes: every block stays at the level it already holds.
class NoopPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "noop"; }
  void control(const PolicyInput&, std::span<int>) override {}
};

struct ThresholdPolicyOptions {
  /// Throttle a block one `step` slower when its sensed temperature reaches
  /// cap - trigger_margin [K]. A positive margin reacts BEFORE the cap so
  /// one epoch of thermal lag does not overshoot it.
  double trigger_margin = 5.0;
  /// Unthrottle one `step` faster only below cap - release_margin [K]; must
  /// exceed trigger_margin (the hysteresis gap).
  double release_margin = 12.0;
  int step = 1;  ///< levels moved per intervention
};

class ThresholdPolicy final : public Policy {
 public:
  explicit ThresholdPolicy(ThresholdPolicyOptions opts = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "threshold"; }
  void control(const PolicyInput& in, std::span<int> levels) override;

 private:
  ThresholdPolicyOptions opts_;
};

struct PidPolicyOptions {
  /// Regulate each block to cap - setpoint_margin [K].
  double setpoint_margin = 5.0;
  double kp = 0.08;  ///< proportional gain [1/K]
  double ki = 40.0;  ///< integral gain [1/(K s)]
  double kd = 0.0;   ///< derivative gain [s/K]
};

class PidPolicy final : public Policy {
 public:
  explicit PidPolicy(PidPolicyOptions opts = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "pid"; }
  void reset(const PolicyContext& ctx, std::size_t block_count) override;
  void control(const PolicyInput& in, std::span<int> levels) override;

 private:
  PidPolicyOptions opts_;
  std::vector<double> integral_;
  std::vector<double> prev_error_;
  bool primed_ = false;  ///< prev_error_ holds a real sample
};

}  // namespace ptherm::rtm
