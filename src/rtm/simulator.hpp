// The closed loop: sensors -> policy -> V/f actuation -> thermal response,
// one decision per control epoch of `steps_per_epoch` transient steps. The
// driver rides core::solve_transient_cosim's per-epoch power-update hook —
// it never re-enters the co-simulation from outside — so every epoch pays
// one sensor sample, one policy call, one leakage re-evaluation at the
// actual operating voltages, and one backend power update; the interior
// steps of an epoch are the backend's cheap path (spectral: pure mode
// decay). Leakage-temperature feedback stays INSIDE the loop: throttling
// lowers voltage, which lowers leakage, which cools the die, which raises
// the sensed headroom the policy acts on next epoch.
#pragma once

#include <vector>

#include "core/transient.hpp"
#include "rtm/actuator.hpp"
#include "rtm/policy.hpp"
#include "rtm/sensor.hpp"
#include "rtm/trace.hpp"
#include "telemetry/telemetry.hpp"

namespace ptherm::rtm {

struct RtmOptions {
  /// Transient backend for the plant; must support time stepping
  /// (Fdm or Spectral).
  core::ThermalBackend backend = core::ThermalBackend::Spectral;
  thermal::FdmOptions fdm;
  thermal::SpectralOptions spectral;
  double dt = 1e-4;          ///< transient step [s]
  int steps_per_epoch = 10;  ///< control period, in steps
  double vb = 0.0;           ///< substrate bias [V]
  /// The temperature cap the study enforces [K, absolute]; must exceed the
  /// die's sink temperature. Policies receive it via PolicyContext;
  /// time_over_cap measures violations against the TRUE temperatures.
  double temperature_cap = 0.0;
  SensorOptions sensor;      ///< seed/quantization/noise/latency of the sensors
  /// Record a timeline row every `record_every` epochs (0 = metrics only).
  int record_every = 0;
  /// Die stack for the plant (thermal/stack.hpp); unset keeps the classic
  /// single-die problem. An RC-network boundary makes the heatsink a dynamic
  /// state of the plant: sensed temperatures include the case rise, so
  /// policies feel (and must fight) the package time constants.
  std::optional<thermal::DieStack> stack;
  /// Convergence-trace recording, threaded straight through to the plant
  /// (core::TransientCosimOptions::trace): with trace.convergence the result
  /// carries the plant's per-step inner-iteration trace. Recording only
  /// APPENDS — the control loop and plant arithmetic are bitwise unchanged.
  telemetry::TraceOptions trace;
};

/// Run-level metrics. All temperature metrics are TRUE block temperatures
/// sampled at epoch boundaries (plus the final instant), not the sensed
/// values the policy saw.
struct RtmMetrics {
  double peak_temperature = 0.0;     ///< hottest block over the run [K]
  double avg_temperature = 0.0;      ///< time-average of the block mean [K]
  double time_over_cap = 0.0;        ///< any block above the cap [s]
  double energy = 0.0;               ///< dissipated (dynamic + leakage) [J]
  double work_requested = 0.0;       ///< integral of requested activity [activity * s]
  double work_delivered = 0.0;       ///< same, scaled by each block's f/f0
  /// work_delivered / work_requested: 1.0 = nothing throttled away.
  double throughput_fraction = 0.0;
  long long interventions = 0;       ///< per-block level changes applied
  long long epochs = 0;
  long long steps = 0;
  thermal::BackendCostStats backend_stats;
};

struct RtmResult {
  RtmMetrics metrics;
  std::vector<double> final_temps;   ///< true block temperatures at t_stop [K]
  /// With RtmOptions::trace.convergence: the plant's inner backend
  /// iterations per transient step (size == metrics.steps). Empty when
  /// tracing is off.
  std::vector<int> step_inner_iterations;
  // Timeline (one row per recorded epoch, epoch start instant).
  std::vector<double> times;
  std::vector<double> peak_temps;         ///< hottest block [K]
  std::vector<double> total_power;        ///< dynamic + leakage held that epoch [W]
  std::vector<double> throttled_fraction; ///< blocks not at level 0
};

/// Closes the loop over `trace`: epochs = round(trace.duration() /
/// (steps_per_epoch * dt)), at least 1. `policy` is reset (with the loop's
/// PolicyContext) and `actuator` is reset to level 0 before the run, so a
/// given (floorplan, trace, policy, options) tuple reproduces bitwise.
/// Throws ptherm::PreconditionError on mismatched block counts, a cap at or
/// below the sink temperature, or a steady-only backend.
[[nodiscard]] RtmResult run_rtm(const device::Technology& tech,
                                const floorplan::Floorplan& fp, const WorkloadTrace& trace,
                                Policy& policy, Actuator& actuator,
                                const RtmOptions& opts = {});

}  // namespace ptherm::rtm
