// Operating points and actuation: the knobs the runtime thermal manager
// turns. A VfLadder enumerates the per-block voltage/frequency levels
// (level 0 = fastest = the point the floorplan's nominal dynamic powers were
// characterized at); the Actuator maps a block's requested activity to
// delivered dynamic power through the existing power/dynamic model
// (P ~ alpha f C V^2, so the per-level scale is (V/V0)^2 * (f/f0)) and
// evaluates leakage through leakage/ at the level's ACTUAL supply voltage —
// lowering VDD shrinks DIBL and the output swing, so throttling feeds back
// into the electro-thermal fixed point instead of just scaling a constant.
#pragma once

#include <cstddef>
#include <vector>

#include "floorplan/floorplan.hpp"

namespace ptherm::rtm {

/// One selectable voltage/frequency pair.
struct OperatingPoint {
  double voltage = 0.0;    ///< supply [V]
  double frequency = 0.0;  ///< clock [Hz]
};

/// Ordered ladder of operating points: level 0 is the fastest (highest
/// frequency); each further level is strictly slower and no higher in
/// voltage — "throttle one level" always means less power.
class VfLadder {
 public:
  explicit VfLadder(std::vector<OperatingPoint> points);

  /// Evenly spaced ladder from (v_nom, f_nom) down to
  /// (v_min_fraction * v_nom, f_min_fraction * f_nom) in `levels` steps.
  [[nodiscard]] static VfLadder uniform(double v_nom, double f_nom, int levels,
                                        double v_min_fraction, double f_min_fraction);

  [[nodiscard]] int level_count() const noexcept { return static_cast<int>(points_.size()); }
  [[nodiscard]] const OperatingPoint& at(int level) const;
  /// f_level / f_0 for each level, descending from 1.0 — the per-level
  /// delivered-throughput fraction (handed to frequency-aware policies).
  [[nodiscard]] std::vector<double> speed_fractions() const;

 private:
  std::vector<OperatingPoint> points_;
};

struct ActuatorOptions {
  /// 0 evaluates leakage exactly through leakage/ on every query. A positive
  /// count instead samples each (block, level) leakage-vs-temperature curve
  /// once at construction and interpolates linearly between samples — the
  /// long-trace speed lever (the curve is smooth and exponential-like, so a
  /// few dozen points stay well under a percent). The temperature window
  /// must cover every query; out-of-window queries clamp to the ends.
  int leakage_table_points = 0;
  double table_t_min = 273.15;  ///< table window low end [K]
  double table_t_max = 473.15;  ///< table window high end [K]
};

/// Per-block V/f state over a floorplan. The floorplan and technology are
/// copied in (same ownership policy as ElectroThermalSolver: the actuator
/// cannot dangle); levels start at 0 (fastest).
class Actuator {
 public:
  Actuator(device::Technology tech, floorplan::Floorplan fp, VfLadder ladder,
           ActuatorOptions opts = {});

  [[nodiscard]] std::size_t block_count() const noexcept { return fp_.blocks().size(); }
  [[nodiscard]] const VfLadder& ladder() const noexcept { return ladder_; }

  /// Current level of `block`.
  [[nodiscard]] int level(std::size_t block) const;
  /// Sets `block` to `lvl` (clamped into the ladder); returns true when the
  /// effective level actually changed — the intervention counter's unit.
  bool set_level(std::size_t block, int lvl);
  /// Everything back to level 0 (run start).
  void reset();

  /// Delivered dynamic power of `block` at requested activity `activity`
  /// under its current level: p_dynamic_nominal * activity * scale(level),
  /// with scale derived from power::transient_power at the level's V and f.
  [[nodiscard]] double dynamic_power(std::size_t block, double activity) const;
  /// Leakage power of `block` at temperature `temp` [K] and substrate bias
  /// `vb`, evaluated at the current level's supply voltage.
  [[nodiscard]] double leakage_power(std::size_t block, double temp, double vb = 0.0) const;
  /// f_level / f_0 of `block`'s current level: the fraction of requested
  /// work actually delivered per unit time.
  [[nodiscard]] double throughput_scale(std::size_t block) const;

  /// Per-level dynamic-power scale (V/V0)^2 * (f/f0), exposed for tests.
  [[nodiscard]] double dynamic_scale(int lvl) const;

 private:
  [[nodiscard]] double leakage_exact(std::size_t block, int lvl, double temp,
                                     double vb) const;

  device::Technology tech_;
  floorplan::Floorplan fp_;
  VfLadder ladder_;
  ActuatorOptions opts_;
  std::vector<int> levels_;                  ///< per block
  std::vector<double> scales_;               ///< per level, (V/V0)^2 (f/f0)
  std::vector<double> speeds_;               ///< per level, f/f0
  std::vector<device::Technology> level_tech_;  ///< tech with vdd = level voltage
  /// Linear leakage tables, [block][level][point]; empty when exact.
  std::vector<double> table_;
  double table_dt_ = 0.0;
};

}  // namespace ptherm::rtm
