#include "rtm/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "telemetry/counters.hpp"

namespace ptherm::rtm {

RtmResult run_rtm(const device::Technology& tech, const floorplan::Floorplan& fp,
                  const WorkloadTrace& trace, Policy& policy, Actuator& actuator,
                  const RtmOptions& opts) {
  const std::size_t n = fp.blocks().size();
  PTHERM_REQUIRE(n > 0, "run_rtm: empty floorplan");
  PTHERM_REQUIRE(trace.block_count() == n, "run_rtm: trace block count mismatch");
  PTHERM_REQUIRE(trace.sample_count() > 0, "run_rtm: empty trace");
  PTHERM_REQUIRE(actuator.block_count() == n, "run_rtm: actuator block count mismatch");
  PTHERM_REQUIRE(opts.dt > 0.0, "run_rtm: dt must be positive");
  PTHERM_REQUIRE(opts.steps_per_epoch >= 1, "run_rtm: steps_per_epoch must be >= 1");
  PTHERM_REQUIRE(opts.record_every >= 0, "run_rtm: record_every must be >= 0");
  PTHERM_REQUIRE(opts.temperature_cap > fp.die().t_sink,
                 "run_rtm: temperature cap must exceed the sink temperature");
  TELEMETRY_SPAN("rtm/run");

  const double epoch_dt = opts.dt * static_cast<double>(opts.steps_per_epoch);
  const long long epochs =
      std::max<long long>(1, std::llround(trace.duration() / epoch_dt));

  PolicyContext ctx;
  ctx.temperature_cap = opts.temperature_cap;
  ctx.t_sink = fp.die().t_sink;
  ctx.epoch_duration = epoch_dt;
  ctx.level_count = actuator.ladder().level_count();
  ctx.level_speed = actuator.ladder().speed_fractions();
  policy.reset(ctx, n);
  actuator.reset();
  SensorBank sensors(n, [&] {
    SensorOptions s = opts.sensor;
    if (s.t_anchor == 0.0) s.t_anchor = fp.die().t_sink;
    return s;
  }());

  RtmResult result;
  RtmMetrics& m = result.metrics;
  std::vector<int> levels(n, 0);
  std::vector<double> activity(n, 0.0);
  double temp_time_integral = 0.0;

  // The whole control loop lives in the cosim's power-update hook: the
  // plant integrates between hook calls, the hook closes the loop.
  const core::PowerUpdateHook hook = [&](long long epoch, double t,
                                         std::span<const double> temps,
                                         std::span<double> p_dyn,
                                         std::span<double> p_leak) {
    // ceil(t_stop / dt) in the cosim can round one ulp high and append a
    // ~zero-length trailing step whose boundary would fire a spurious
    // (epochs+1)-th hook call; leaving the spans untouched keeps the last
    // epoch's powers for that sliver and keeps every metric weighted by
    // exactly `epochs` control periods.
    if (epoch >= epochs) return;
    TELEMETRY_SPAN("rtm/epoch");
    // Sense (imperfect view), decide, actuate.
    const std::span<const double> sensed = sensors.sample(temps);
    for (std::size_t i = 0; i < n; ++i) activity[i] = trace.activity_at(i, t);
    PolicyInput in;
    in.epoch = epoch;
    in.t = t;
    in.temps = sensed;
    in.activity = activity;
    policy.control(in, levels);
    double epoch_power = 0.0;
    double throttled = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      levels[i] = std::clamp(levels[i], 0, ctx.level_count - 1);
      if (actuator.set_level(i, levels[i])) ++m.interventions;
      // Physics at the actual operating point: dynamic power through the
      // V^2 f scale, leakage at the level's supply voltage and the TRUE
      // block temperature — the electro-thermal feedback the policy is
      // implicitly fighting.
      p_dyn[i] = actuator.dynamic_power(i, activity[i]);
      p_leak[i] = actuator.leakage_power(i, temps[i], opts.vb);
      epoch_power += p_dyn[i] + p_leak[i];
      m.work_requested += activity[i] * epoch_dt;
      m.work_delivered += activity[i] * actuator.throughput_scale(i) * epoch_dt;
      if (levels[i] != 0) throttled += 1.0;
    }
    // Metrics on the true temperatures at the epoch boundary.
    double peak = 0.0;
    double mean = 0.0;
    for (double temp : temps) {
      peak = std::max(peak, temp);
      mean += temp;
    }
    mean /= static_cast<double>(n);
    m.peak_temperature = std::max(m.peak_temperature, peak);
    temp_time_integral += mean * epoch_dt;
    if (peak > opts.temperature_cap) m.time_over_cap += epoch_dt;
    m.energy += epoch_power * epoch_dt;
    ++m.epochs;
    if (opts.record_every > 0 && epoch % opts.record_every == 0) {
      result.times.push_back(t);
      result.peak_temps.push_back(peak);
      result.total_power.push_back(epoch_power);
      result.throttled_fraction.push_back(throttled / static_cast<double>(n));
    }
  };

  core::TransientCosimOptions cosim;
  cosim.backend = opts.backend;
  cosim.fdm = opts.fdm;
  cosim.spectral = opts.spectral;
  cosim.stack = opts.stack;
  cosim.trace = opts.trace;
  cosim.dt = opts.dt;
  cosim.t_stop = static_cast<double>(epochs) * epoch_dt;
  cosim.vb = opts.vb;
  cosim.power_update_every = opts.steps_per_epoch;
  // The hook sees every epoch boundary; the inner result only needs the
  // final instant, so record as sparsely as the validator allows (clamped:
  // a multi-billion-step trace must not wrap the int and start recording
  // dense rows — the final step is always recorded regardless).
  cosim.record_every = static_cast<int>(
      std::min<long long>(epochs * opts.steps_per_epoch,
                          std::numeric_limits<int>::max()));
  auto transient = core::solve_transient_cosim(tech, fp, hook, cosim);

  result.final_temps = transient.block_temps.back();
  result.step_inner_iterations = std::move(transient.step_inner_iterations);
  for (double temp : result.final_temps) {
    m.peak_temperature = std::max(m.peak_temperature, temp);
  }
  // Normalize by the epochs the hook actually served (== `epochs` unless the
  // core grid logic ever changes), so the metrics stay self-consistent.
  m.avg_temperature = temp_time_integral / (static_cast<double>(m.epochs) * epoch_dt);
  m.throughput_fraction = m.work_requested > 0.0 ? m.work_delivered / m.work_requested : 1.0;
  m.steps = m.epochs * opts.steps_per_epoch;
  // Backend counters ride the registry like every other merge site (batch
  // cost_stats, influence_stats_from): contribute under the catalog names,
  // read the struct back field-complete. An exact round trip — the fields
  // are integers — kept on the shared route so new counters cannot be
  // dropped here silently.
  telemetry::Registry reg;
  telemetry::contribute(reg, transient.backend_stats);
  m.backend_stats = telemetry::backend_cost_from(reg);
  return result;
}

}  // namespace ptherm::rtm
