// Thermal sensors: what the policy actually sees. Real on-die sensors lag
// the silicon, add noise, and quantize through an ADC, so a policy tuned on
// perfect temperatures can oscillate or overshoot on hardware. The
// SensorBank models all three imperfections deterministically (seeded
// splitmix64 noise) so closed-loop studies stay bitwise reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace ptherm::rtm {

struct SensorOptions {
  /// ADC step [K]; readings snap to t_anchor + n * quantization (0 = ideal).
  double quantization = 0.0;
  /// Gaussian noise sigma [K] added before quantization (0 = noiseless).
  double noise_sigma = 0.0;
  /// Readings reflect the temperatures `latency` sample() calls ago (epochs,
  /// in the RTM loop). Until enough history exists the oldest sample holds.
  int latency = 0;
  /// Noise stream seed; same seed => same readings.
  std::uint64_t seed = 0x5eed5eed5eedull;
  /// Quantization anchor [K] (the sensor's calibration point — typically the
  /// sink temperature).
  double t_anchor = 0.0;
};

/// One sensor per block. sample() ingests the true temperatures for this
/// control epoch and returns the sensed view; the returned span stays valid
/// until the next sample() call.
class SensorBank {
 public:
  explicit SensorBank(std::size_t block_count, SensorOptions opts = {});

  [[nodiscard]] std::size_t block_count() const noexcept { return block_count_; }

  std::span<const double> sample(std::span<const double> temps);

  /// Back to the initial state (history and noise stream).
  void reset();

 private:
  std::size_t block_count_ = 0;
  SensorOptions opts_;
  Rng rng_;
  std::vector<double> history_;  ///< ring buffer, (latency + 1) rows
  std::size_t filled_ = 0;       ///< rows ingested so far (saturates)
  std::size_t head_ = 0;         ///< next row to overwrite
  std::vector<double> sensed_;
};

}  // namespace ptherm::rtm
