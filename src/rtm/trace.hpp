// Workload traces for runtime thermal management: per-block activity
// timelines sampled on a uniform grid. A trace is the demand side of the
// control loop — what the workload *asks* each block to do — while the
// actuator (rtm/actuator.hpp) decides how much of that demand is delivered
// at the chosen V/f operating point.
//
// Synthetic generators cover the structural patterns DVFS studies care
// about (periodic bursts, bounded random walks, phase-shifted core
// migration), and a small text format makes traces portable between runs
// and tools with a bitwise read/write round trip.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace ptherm::rtm {

/// Per-block activity timeline on a uniform sample grid. Activity is the
/// dimensionless multiplier on a block's nominal dynamic power (1.0 =
/// nominal, 0 = idle); lookups between samples are sample-and-hold, and
/// lookups beyond either end clamp to the first/last sample.
class WorkloadTrace {
 public:
  WorkloadTrace() = default;
  /// Empty trace over `block_count` blocks with `sample_dt` seconds between
  /// samples. Throws ptherm::PreconditionError on a degenerate shape.
  WorkloadTrace(std::size_t block_count, double sample_dt);

  /// Appends one sample (one activity per block, all >= 0).
  void append(std::span<const double> activities);

  [[nodiscard]] std::size_t block_count() const noexcept { return block_count_; }
  [[nodiscard]] std::size_t sample_count() const noexcept {
    return block_count_ == 0 ? 0 : samples_.size() / block_count_;
  }
  [[nodiscard]] double sample_dt() const noexcept { return sample_dt_; }
  /// Total covered time: sample_count * sample_dt (the last sample holds for
  /// one full interval, matching the sample-and-hold lookup).
  [[nodiscard]] double duration() const noexcept {
    return static_cast<double>(sample_count()) * sample_dt_;
  }

  /// Activity of `block` in sample `sample` (bounds-checked).
  [[nodiscard]] double activity(std::size_t sample, std::size_t block) const;
  /// Sample-and-hold activity of `block` at time `t` [s], clamped to the
  /// trace's span. Throws if the trace is empty.
  [[nodiscard]] double activity_at(std::size_t block, double t) const;

  [[nodiscard]] bool operator==(const WorkloadTrace&) const = default;

 private:
  std::size_t block_count_ = 0;
  double sample_dt_ = 0.0;
  std::vector<double> samples_;  ///< row-major [sample][block]
};

// ----------------------------------------------------------- generators ---

/// Periodic on/off bursts; `phase_step` shifts each block's burst window by
/// that fraction of a period relative to the previous block, so phase_step=0
/// bursts every block together and phase_step=1/blocks staggers them evenly.
struct BurstPattern {
  double period = 8e-3;   ///< burst period [s]
  double duty = 0.5;      ///< fraction of the period spent at `high`
  double high = 1.5;      ///< activity inside the burst
  double low = 0.05;      ///< activity between bursts
  double phase_step = 0.0;
};
[[nodiscard]] WorkloadTrace make_burst_trace(std::size_t blocks, std::size_t samples,
                                             double sample_dt, const BurstPattern& pattern);

/// Independent bounded random walks, one per block: activity moves by a
/// uniform step in [-step, step] each sample and reflects off the bounds.
struct RandomWalkPattern {
  double start = 0.6;
  double step = 0.15;
  double floor = 0.0;
  double ceil = 1.5;
};
[[nodiscard]] WorkloadTrace make_random_walk_trace(std::size_t blocks, std::size_t samples,
                                                   double sample_dt,
                                                   const RandomWalkPattern& pattern, Rng& rng);

/// Core migration: one "hot" task rotates across the blocks, dwelling
/// `dwell` seconds on each (block k is hot during [k*dwell, (k+1)*dwell)
/// modulo blocks*dwell); everyone else idles at `cold`.
struct MigrationPattern {
  double dwell = 4e-3;
  double hot = 1.6;
  double cold = 0.1;
};
[[nodiscard]] WorkloadTrace make_migration_trace(std::size_t blocks, std::size_t samples,
                                                 double sample_dt,
                                                 const MigrationPattern& pattern);

// ------------------------------------------------------------- text I/O ---
//
// Format (whitespace separated, '#' starts a comment line):
//   ptherm-trace v1
//   blocks <n>
//   sample_dt <seconds>
//   samples <count>
//   <activity_block0> ... <activity_block{n-1}>     (one line per sample)
// Values are written with max_digits10 precision so read(write(t)) == t
// bitwise. Malformed input throws ptherm::IoError naming what went wrong.

void write_trace(std::ostream& os, const WorkloadTrace& trace);
[[nodiscard]] WorkloadTrace read_trace(std::istream& is);

/// File-path conveniences; IoError if the file cannot be opened.
void write_trace_file(const std::string& path, const WorkloadTrace& trace);
[[nodiscard]] WorkloadTrace read_trace_file(const std::string& path);

}  // namespace ptherm::rtm
