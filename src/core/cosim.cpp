#include "core/cosim.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "device/variation.hpp"
#include "telemetry/telemetry.hpp"

namespace ptherm::core {

std::unique_ptr<thermal::SolverBackend> make_thermal_backend(const thermal::Die& die,
                                                             const CosimOptions& opts) {
  switch (opts.backend) {
    case ThermalBackend::Analytic:
      // The image method is a closed form for the single homogeneous die; a
      // stack is only acceptable when it IS that problem.
      PTHERM_REQUIRE(!opts.stack || opts.stack->reduces_to(die),
                     "make_thermal_backend: the analytic backend needs a stack that "
                     "reduces to the die (use Fdm or Spectral for layered stacks)");
      return std::make_unique<thermal::AnalyticImagesBackend>(die, opts.images);
    case ThermalBackend::Fdm: {
      // The one convergence knob (CosimOptions::trace) reaches the inner CG
      // here, so callers never have to touch FdmOptions::cg directly.
      thermal::FdmOptions fdm = opts.fdm;
      if (opts.trace.convergence) fdm.cg.trace = true;
      if (opts.stack) return std::make_unique<thermal::FdmBackend>(die, *opts.stack, fdm);
      return std::make_unique<thermal::FdmBackend>(die, fdm);
    }
    case ThermalBackend::Spectral:
      if (opts.stack) {
        return std::make_unique<thermal::SpectralBackend>(die, *opts.stack, opts.spectral);
      }
      return std::make_unique<thermal::SpectralBackend>(die, opts.spectral);
  }
  throw PreconditionError("make_thermal_backend: unknown backend");
}

double boundary_fold_resistance(const CosimOptions& opts) {
  double r = opts.r_package;
  if (opts.stack) r += opts.stack->package_resistance();
  return r;
}

void validate(const CosimOptions& opts) {
  PTHERM_REQUIRE(opts.damping > 0.0 && opts.damping <= 1.0,
                 "CosimOptions: damping must be in (0, 1]");
  PTHERM_REQUIRE(opts.tol > 0.0, "CosimOptions: tol must be > 0");
  PTHERM_REQUIRE(opts.max_iterations > 0, "CosimOptions: max_iterations must be > 0");
  PTHERM_REQUIRE(opts.runaway_rise_limit > 0.0,
                 "CosimOptions: runaway_rise_limit must be > 0");
  PTHERM_REQUIRE(opts.r_package >= 0.0, "CosimOptions: r_package must be >= 0");
}

double adjusted_leakage_power(const device::Technology& tech,
                              const floorplan::CompiledBlockLeakage& leakage, double temp,
                              double vb, const LeakageAdjust& adj) {
  const double base = leakage.leakage_power(tech, temp, vb);
  // Nominal adjustments are bitwise transparent: exp(-0/nVT) == 1.0 exactly
  // and 1.0 * base == base, so this single expression serves both paths.
  return adj.scale * (device::leakage_multiplier(tech, adj.delta_vt0, temp) * base);
}

ElectroThermalSolver::ElectroThermalSolver(device::Technology tech, floorplan::Floorplan fp,
                                           CosimOptions opts)
    : tech_(std::move(tech)), fp_(std::move(fp)), opts_(opts) {
  PTHERM_REQUIRE(!fp_.blocks().empty(), "ElectroThermalSolver: empty floorplan");
  validate(opts_);
  compiled_leakage_.reserve(fp_.blocks().size());
  for (const auto& block : fp_.blocks()) compiled_leakage_.emplace_back(block);
  backend_ = make_thermal_backend(fp_.die(), opts_);
  build_influence();
}

void ElectroThermalSolver::build_influence() {
  TELEMETRY_SPAN("cosim/build_influence");
  // Every backend is linear in the injected power, so the influence operator
  // captures it exactly: R[i][j] = rise at block i per watt in block j. The
  // Picard loop only needs R *applied*, so matrix-free-capable backends
  // (spectral) serve the seam directly; dense construction is batched per
  // column by the backend (thermal/backend.hpp).
  const auto samples = block_centre_samples(fp_);
  const std::vector<thermal::HeatSource> sources = fp_.heat_sources(tech_);
  const bool want_matrix_free =
      opts_.influence == InfluenceMode::MatrixFree ||
      (opts_.influence == InfluenceMode::Auto && backend_->supports_matrix_free_influence());
  if (want_matrix_free) {
    // Forced MatrixFree on a dense-only backend throws here, naming it.
    matrix_free_ = backend_->make_influence_apply(sources, samples);
  } else {
    influence_.emplace(backend_->build_influence(sources, samples));
    // The boundary resistance (r_package + stack RC network) couples every
    // pair uniformly: each watt anywhere raises the whole die by it.
    // Matrix-free mode has no matrix to shift — solve() folds the same term
    // in analytically, through the same helper.
    const double r_fold = boundary_fold_resistance(opts_);
    if (r_fold > 0.0) influence_->add_uniform(r_fold);
  }
  influence_stats_ = influence_stats_from(backend_->cost_stats());
}

const thermal::InfluenceApply& ElectroThermalSolver::influence_apply() const noexcept {
  return matrix_free_ ? static_cast<const thermal::InfluenceApply&>(*matrix_free_)
                      : *influence_;
}

const InfluenceOperator& ElectroThermalSolver::influence_matrix() const {
  if (!influence_) {
    // Lazy dense realization for diagnostics/ablation consumers: same
    // backend build (and boundary-fold shift) the dense mode would have done.
    InfluenceOperator dense(
        backend_->build_influence(fp_.heat_sources(tech_), block_centre_samples(fp_)));
    const double r_fold = boundary_fold_resistance(opts_);
    if (r_fold > 0.0) dense.add_uniform(r_fold);
    influence_ = std::move(dense);
  }
  return *influence_;
}

double ElectroThermalSolver::block_leakage_power(std::size_t i, double temp) const {
  PTHERM_REQUIRE(i < compiled_leakage_.size(), "block_leakage_power: index out of range");
  const LeakageAdjust adj = adjust_.empty() ? LeakageAdjust{} : adjust_[i];
  return adjusted_leakage_power(tech_, compiled_leakage_[i], temp, opts_.vb, adj);
}

void ElectroThermalSolver::set_leakage_adjust(std::vector<LeakageAdjust> adjust) {
  PTHERM_REQUIRE(adjust.empty() || adjust.size() == fp_.blocks().size(),
                 "set_leakage_adjust: need one adjustment per block (or none)");
  adjust_ = std::move(adjust);
}

CosimResult ElectroThermalSolver::solve() {
  TELEMETRY_SPAN("cosim/solve");
  const auto& blocks = fp_.blocks();
  const std::size_t n = blocks.size();
  const double t_sink = fp_.die().t_sink;

  CosimResult result;
  result.blocks.resize(n);

  std::vector<double> temps(n, t_sink);
  std::vector<double> powers(n, 0.0);
  std::vector<double> rises(n, 0.0);
  double prev_delta = 0.0;
  int growth_streak = 0;

  const thermal::InfluenceApply& influence = influence_apply();
  // In matrix-free mode the uniform boundary term fold * sum(P) cannot live
  // inside the operator (there is no matrix to add_uniform); fold it in
  // analytically per iteration. Dense mode carries it in the matrix — both
  // through boundary_fold_resistance, so the modes cannot diverge.
  const double r_pkg = matrix_free_ ? boundary_fold_resistance(opts_) : 0.0;

  for (int it = 0; it < opts_.max_iterations; ++it) {
    result.iterations = it + 1;
    for (std::size_t j = 0; j < n; ++j) {
      powers[j] = blocks[j].p_dynamic + block_leakage_power(j, temps[j]);
    }
    influence.apply(powers, rises);
    if (r_pkg > 0.0) {
      double p_total = 0.0;
      for (std::size_t j = 0; j < n; ++j) p_total += powers[j];
      const double pkg_rise = r_pkg * p_total;
      for (std::size_t i = 0; i < n; ++i) rises[i] += pkg_rise;
    }
    double max_delta = 0.0;
    double max_rise = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double target = t_sink + rises[i];
      const double updated = temps[i] + opts_.damping * (target - temps[i]);
      max_delta = std::max(max_delta, std::abs(updated - temps[i]));
      temps[i] = updated;
      max_rise = std::max(max_rise, temps[i] - t_sink);
    }
    result.max_delta_last = max_delta;
    if (opts_.trace.convergence) result.picard_residuals.push_back(max_delta);

    if (max_rise > opts_.runaway_rise_limit) {
      result.runaway = true;
      break;
    }
    // A monotonically growing update over several iterations is the fixed
    // point diverging: leakage-thermal runaway below the hard rise limit.
    if (max_delta > prev_delta && it > 0) {
      if (++growth_streak >= 10) {
        result.runaway = true;
        break;
      }
    } else {
      growth_streak = 0;
    }
    prev_delta = max_delta;

    if (max_delta < opts_.tol) {
      result.converged = true;
      break;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    result.blocks[i].temperature = temps[i];
    result.blocks[i].p_dynamic = blocks[i].p_dynamic;
    result.blocks[i].p_leakage = block_leakage_power(i, temps[i]);
    result.total_dynamic += result.blocks[i].p_dynamic;
    result.total_leakage += result.blocks[i].p_leakage;
    result.max_temperature = std::max(result.max_temperature, temps[i]);
  }
  if (!result.converged) {
    std::size_t hottest = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (temps[i] > temps[hottest]) hottest = i;
    }
    SolveDiagnostics diag;
    diag.solver = "ElectroThermalSolver";
    diag.stage = result.runaway ? "runaway" : "max-iterations";
    diag.iterations = result.iterations;
    diag.residual = result.max_delta_last;
    diag.worst = blocks[hottest].name;
    result.diagnostics = std::move(diag);
  }
  return result;
}

}  // namespace ptherm::core
