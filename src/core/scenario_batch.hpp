// Batched scenario engine: thousands of cosims per second over one shared
// geometry precompute.
//
// Monte Carlo process variation, V/f corner sweeps, and trace corpora all
// re-solve the SAME die with different power vectors — and everything
// expensive about a cosim depends only on geometry: the thermal backend, the
// dense influence operator or the spectral flux-projection and mode-synthesis
// tables, and the compiled per-block leakage programs. ScenarioBatch builds
// that set once (by owning a regular ElectroThermalSolver) and then solves
// many scenarios against it:
//
//  * Per-scenario parameters are stored SoA — power vectors, per-block
//    LeakageAdjust (scale + dVT0), V/f level index — so the blocked sweeps
//    stream contiguous memory.
//  * The Picard fixed points advance as BLOCKED matvecs: K scenarios per
//    multi-RHS InfluenceApply::apply_batch (spectral: the mode-space
//    accumulate/synthesis becomes a small GEMM over the scenario block;
//    dense: Matrix::multiply_batch streams R once per row).
//  * Per-scenario convergence masks: a scenario that converges (or runs
//    away) drops out of the blocked sweep immediately, so easy scenarios
//    stop paying for the hardest one in their chunk.
//  * Chunks go through the for_each_chunk seam — disjoint ranges, private
//    scratch, order-independent results — shaped so a future thread pool
//    can take it without touching the engine.
//
// Determinism contract: every scenario's solution is BITWISE identical to a
// standalone ElectroThermalSolver run of that scenario (same options, level
// technology, powers, and adjustments) — the blocking only reorders work
// across scenarios, never within one. Monte Carlo scenarios draw from
// decorrelated per-sample streams (Rng::stream), so results are also bitwise
// independent of batch size, order, and chunking. Both pinned by tests.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/cosim.hpp"
#include "device/variation.hpp"

namespace ptherm::core {

struct ScenarioBatchOptions {
  /// Scenarios advanced together per blocked Picard sweep — the multi-RHS
  /// width and the work unit of the for_each_chunk seam. Larger chunks
  /// amortize shared-table streaming better; smaller chunks keep scratch in
  /// cache. Results are bitwise chunk-size invariant.
  int chunk = 64;
};

/// Throws ptherm::PreconditionError if chunk < 1.
void validate(const ScenarioBatchOptions& opts);

/// The chunk seam: fn(begin, end) over [0, count) in `chunk`-sized pieces.
/// Single-threaded today (the dev box has one core); the contract a thread
/// pool needs is already in force — callers pass work whose chunks touch
/// disjoint state and whose results do not depend on chunk execution order.
void for_each_chunk(std::size_t count, int chunk,
                    const std::function<void(std::size_t, std::size_t)>& fn);

/// One scenario's converged state — CosimResult minus the per-block AoS
/// (temperatures come back as a flat vector; powers were the inputs).
struct ScenarioResult {
  bool converged = false;
  bool runaway = false;
  int iterations = 0;
  double max_temperature = 0.0;  ///< hottest block [K]
  double total_dynamic = 0.0;    ///< [W]
  double total_leakage = 0.0;    ///< [W] at the converged temperatures
  double max_delta_last = 0.0;   ///< last iteration's max |dT| [K]
  std::vector<double> temperatures;  ///< per-block [K]
  /// Structured non-convergence context (common/diagnostics.hpp): set iff
  /// this scenario did not converge — which scenario, runaway or
  /// max-iterations, and the hottest block by name. Empty when converged.
  std::optional<SolveDiagnostics> diagnostics;
  /// With CosimOptions::trace.convergence: this scenario's Picard residual
  /// max |dT| [K] after each of its iterations (size == iterations) — the
  /// same values a standalone solve of this scenario records. Empty when
  /// tracing is off.
  std::vector<double> picard_residuals;

  [[nodiscard]] double total_power() const noexcept { return total_dynamic + total_leakage; }
};

/// Batch-engine counters (merged into BackendCostStats by cost_stats()).
/// Keep this a plain bag of long long counters: telemetry/counters.cpp pins
/// its layout with a static_assert so every field reaches the registry.
struct ScenarioBatchStats {
  long long scenarios = 0;                ///< scenario solves completed
  long long batched_matvecs = 0;          ///< multi-RHS applies issued
  long long picard_iterations_total = 0;  ///< sum of per-scenario iterations
  long long masked_iterations_saved = 0;  ///< scenario-iterations masks avoided
};

/// Sweep-level convergence trace (CosimOptions::trace.convergence; separate
/// from ScenarioBatchStats so the counter bag stays registry-shaped). One
/// entry per blocked Picard sweep across all solve_all chunks, in execution
/// order: how many scenarios were still active going into the sweep, and the
/// worst Picard residual any of them produced in it.
struct ScenarioBatchTrace {
  std::vector<long long> active_per_sweep;     ///< active-mask size per sweep
  std::vector<double> max_residual_per_sweep;  ///< worst max |dT| per sweep [K]
};

class ScenarioBatch {
 public:
  /// Builds the shared geometry precompute: any backend, dense or
  /// matrix-free, with or without a DieStack — exactly what an
  /// ElectroThermalSolver with these arguments would build, because that is
  /// literally what it constructs and keeps.
  ScenarioBatch(device::Technology tech, floorplan::Floorplan fp, CosimOptions opts = {},
                ScenarioBatchOptions batch = {});

  [[nodiscard]] std::size_t block_count() const noexcept { return nominal_powers_.size(); }
  /// Scenarios queued so far.
  [[nodiscard]] std::size_t size() const noexcept { return level_index_.size(); }
  [[nodiscard]] bool matrix_free() const noexcept { return solver_.matrix_free(); }

  // --- V/f levels ---------------------------------------------------------
  // Level 0 is the construction technology at its nominal supply and
  // frequency (dynamic scale 1). Further levels rewrite the supply through
  // device::at_supply (the DIBL-consistent rule the RTM actuator uses) and
  // scale dynamic power through power::transient_power, so the ratio is
  // exactly (V/V0)^2 * f_scale — computed through the power model, not
  // hand-rolled.

  /// Adds (or finds) the level for supply `voltage` and relative frequency
  /// `f_scale` (f / f_nominal); returns its index.
  int add_vf_level(double voltage, double f_scale);
  [[nodiscard]] int level_count() const noexcept { return static_cast<int>(levels_.size()); }
  [[nodiscard]] const device::Technology& level_technology(int level) const;
  [[nodiscard]] double level_dynamic_scale(int level) const;

  // --- queueing scenarios --------------------------------------------------

  /// Fully general scenario: per-block dynamic powers [W] (size
  /// block_count()), optional per-block leakage adjustments (empty =
  /// nominal), V/f level for the leakage technology. Returns its index.
  std::size_t add_scenario(std::vector<double> p_dynamic,
                           std::vector<LeakageAdjust> adjust = {}, int level = 0);

  /// The floorplan's nominal powers scaled by `level`'s dynamic scale (at
  /// level 0 the scale is exactly 1.0, bitwise). Returns the scenario index.
  std::size_t add_nominal(int level = 0);

  /// `count` Monte Carlo scenarios at nominal powers: sample s draws one
  /// VT0 offset per block from the dedicated stream Rng::stream(base_seed,
  /// s) (see device::VariationModel::sample_scenario_delta_vt0), so sample s
  /// is bitwise identical whether queued alone or among millions. Returns
  /// the index of the first queued scenario.
  std::size_t add_variation_samples(const device::VariationModel& var, int count,
                                    std::uint64_t base_seed);

  /// One V/f corner at (voltage, f_scale): nominal powers times the level's
  /// dynamic scale, leakage under the level's technology. Returns the
  /// scenario index.
  std::size_t add_vf_corner(double voltage, double f_scale,
                            std::vector<LeakageAdjust> adjust = {});

  // --- solving -------------------------------------------------------------

  /// Solves every queued scenario (blocked Picard sweeps, convergence
  /// masks); results[k] corresponds to scenario k. Scenarios stay queued:
  /// solve_all can run again (counters accumulate).
  [[nodiscard]] std::vector<ScenarioResult> solve_all();

  // --- introspection -------------------------------------------------------

  /// Stored dynamic powers of scenario k (what a standalone reference run
  /// must put in its floorplan to reproduce it).
  [[nodiscard]] std::span<const double> scenario_powers(std::size_t k) const;
  /// Per-block adjustments of scenario k (what set_leakage_adjust takes).
  [[nodiscard]] std::vector<LeakageAdjust> scenario_adjust(std::size_t k) const;
  [[nodiscard]] int scenario_level(std::size_t k) const;

  [[nodiscard]] const ScenarioBatchStats& stats() const noexcept { return stats_; }
  /// Sweep-level convergence trace; empty unless the construction options
  /// set trace.convergence. Accumulates across solve_all calls, like stats().
  [[nodiscard]] const ScenarioBatchTrace& trace() const noexcept { return trace_; }
  /// Backend cost counters with the batch counters merged in — the bench
  /// JSON's one-stop view.
  [[nodiscard]] thermal::BackendCostStats cost_stats() const;
  [[nodiscard]] const InfluenceBuildStats& influence_build_stats() const noexcept {
    return solver_.influence_build_stats();
  }
  [[nodiscard]] const thermal::SolverBackend& backend() const noexcept {
    return solver_.backend();
  }

 private:
  struct Level {
    device::Technology tech;
    double voltage = 0.0;
    double f_scale = 1.0;
    double dynamic_scale = 1.0;
  };

  void run_chunk(std::size_t begin, std::size_t end, std::vector<ScenarioResult>& results);

  CosimOptions opts_;
  ScenarioBatchOptions batch_;
  /// The shared precompute: backend + influence seam + compiled leakage,
  /// identical to a standalone solve's by construction.
  ElectroThermalSolver solver_;
  double t_sink_ = 0.0;
  std::vector<double> nominal_powers_;  ///< floorplan p_dynamic, level 0
  std::vector<std::string> block_names_;  ///< for non-convergence diagnostics

  std::vector<Level> levels_;

  // SoA scenario storage, one row of block_count() per scenario.
  std::vector<double> powers_;      ///< dynamic power [W]
  std::vector<double> adj_scale_;   ///< LeakageAdjust::scale
  std::vector<double> adj_dvt0_;    ///< LeakageAdjust::delta_vt0 [V]
  std::vector<std::int32_t> level_index_;  ///< per-scenario V/f level

  ScenarioBatchStats stats_;
  ScenarioBatchTrace trace_;
};

}  // namespace ptherm::core
