#include "core/transient.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace ptherm::core {

void validate(const TransientCosimOptions& opts) {
  // t_stop == dt is a legitimate single-step run; only a grid that cannot
  // fit one full step is rejected.
  PTHERM_REQUIRE(opts.dt > 0.0 && opts.t_stop >= opts.dt,
                 "TransientCosimOptions: bad time grid");
  PTHERM_REQUIRE(opts.record_every >= 1, "TransientCosimOptions: record_every must be >= 1");
  PTHERM_REQUIRE(opts.power_update_every >= 1,
                 "TransientCosimOptions: power_update_every must be >= 1");
}

double TransientCosimResult::peak_temperature() const {
  double peak = 0.0;
  for (const auto& temps : block_temps) {
    for (double t : temps) peak = std::max(peak, t);
  }
  return peak;
}

TransientCosimResult solve_transient_cosim(const device::Technology& tech,
                                           const floorplan::Floorplan& fp,
                                           const ActivityProfile& activity,
                                           const TransientCosimOptions& opts) {
  PTHERM_REQUIRE(static_cast<bool>(activity), "transient cosim: null activity profile");
  const auto& blocks = fp.blocks();
  // The original per-step coupling, expressed as the epoch hook: dynamic
  // power from the activity profile, leakage from each block's temperature
  // at the epoch boundary. Synchronous call — the references cannot dangle.
  const PowerUpdateHook hook = [&](long long, double t, std::span<const double> temps,
                                   std::span<double> p_dyn, std::span<double> p_leak) {
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      p_dyn[i] = blocks[i].p_dynamic * activity(i, t);
      p_leak[i] = blocks[i].leakage_power(tech, temps[i], opts.vb);
    }
  };
  return solve_transient_cosim(tech, fp, hook, opts);
}

TransientCosimResult solve_transient_cosim(const device::Technology& tech,
                                           const floorplan::Floorplan& fp,
                                           const PowerUpdateHook& hook,
                                           const TransientCosimOptions& opts) {
  PTHERM_REQUIRE(!fp.blocks().empty(), "transient cosim: empty floorplan");
  validate(opts);
  PTHERM_REQUIRE(static_cast<bool>(hook), "transient cosim: null power-update hook");
  TELEMETRY_SPAN("transient/solve");

  const auto& blocks = fp.blocks();
  const std::size_t n = blocks.size();
  const double t_sink = fp.die().t_sink;

  // The transient loop programs against the backend interface; the factory
  // is shared with the steady solver, so backend settings stay uniform.
  CosimOptions backend_opts;
  backend_opts.backend = opts.backend;
  backend_opts.fdm = opts.fdm;
  backend_opts.spectral = opts.spectral;
  backend_opts.stack = opts.stack;
  backend_opts.trace = opts.trace;
  const auto backend = make_thermal_backend(fp.die(), backend_opts);
  PTHERM_REQUIRE(backend->supports_transient(),
                 "transient cosim: selected thermal backend cannot integrate in time");
  const auto state = backend->make_transient_state();
  std::vector<thermal::HeatSource> sources = fp.heat_sources(tech);

  // Dynamic package boundary: with an RC-network closure the case plane the
  // conduction operator grounds to is itself a state, advanced exactly once
  // per step under the total die power and added uniformly to every block
  // readback. The constant-sink legacy path is pkg == nullptr (case_rise
  // stays 0).
  const thermal::PackageRcNetwork* pkg =
      (opts.stack && opts.stack->boundary().kind == thermal::BoundaryKind::RcNetwork)
          ? &*opts.stack->boundary().rc
          : nullptr;
  thermal::PackageRcNetwork::State pkg_state;
  if (pkg) pkg_state = pkg->make_state();
  double case_rise = 0.0;

  TransientCosimResult result;
  // Whole steps that fit, plus one clamped step for any remainder. The
  // adjustment undoes floating-point drift in t_stop / dt that would
  // otherwise manufacture a spurious zero-length (or negative) final step —
  // an exact comparison, no epsilon.
  int steps = static_cast<int>(std::ceil(opts.t_stop / opts.dt));
  if (steps > 1 && (steps - 1) * opts.dt >= opts.t_stop) --steps;

  // Per-block readback points, hoisted: geometry is fixed for the whole run,
  // and the batched query lets the backend gather all block temperatures at
  // once (spectral: one dense matvec) instead of n independent queries.
  std::vector<thermal::SurfaceSample> centres(n);
  for (std::size_t i = 0; i < n; ++i) {
    centres[i] = {blocks[i].rect.cx(), blocks[i].rect.cy()};
  }
  std::vector<double> rises(n, 0.0);

  std::vector<double> temps(n, t_sink);
  auto record = [&](double t, double p_leak, double p_dyn) {
    result.times.push_back(t);
    result.block_temps.push_back(temps);
    result.leakage_power.push_back(p_leak);
    result.dynamic_power.push_back(p_dyn);
    result.case_rise.push_back(case_rise);
  };

  // Epoch powers: evaluated by the hook at each epoch boundary (from the
  // temperatures at that instant — semi-implicit coupling; the thermal time
  // constants are far longer than any epoch a caller would pick, so the
  // splitting error is negligible — tested) and held for the whole epoch.
  const int k = opts.power_update_every;
  std::vector<double> p_dyn(n, 0.0);
  std::vector<double> p_leak(n, 0.0);
  double sum_dyn = 0.0;
  double sum_leak = 0.0;
  auto update_powers = [&](long long epoch, double t) {
    TELEMETRY_SPAN("transient/epoch");
    hook(epoch, t, temps, p_dyn, p_leak);
    sum_dyn = 0.0;
    sum_leak = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sources[i].power = p_dyn[i] + p_leak[i];
      sum_dyn += p_dyn[i];
      sum_leak += p_leak[i];
    }
  };

  update_powers(0, 0.0);
  record(0.0, sum_leak, sum_dyn);

  for (int s = 0; s < steps; ++s) {
    const bool last = s + 1 == steps;
    // Step boundaries come from the step index, not an accumulating sum, so
    // roundoff cannot drift the grid; the final step lands exactly on
    // t_stop.
    const double h = last ? opts.t_stop - s * opts.dt : opts.dt;
    if (s > 0 && s % k == 0) update_powers(s / k, s * opts.dt);
    const int inner = backend->step_transient(*state, h, sources);
    result.total_cg_iterations += inner;
    if (opts.trace.convergence) result.step_inner_iterations.push_back(inner);
    // The package sees the total die power, held constant over the step —
    // the same piecewise-constant contract as the conduction backends, so
    // the exact exponential update applies.
    if (pkg) case_rise = pkg->advance(pkg_state, h, sum_dyn + sum_leak);
    // Temperatures are only read back where someone consumes them: at
    // recorded steps and at epoch boundaries (the next hook call). Interior
    // steps of an epoch skip the gather entirely — with power_update_every
    // == 1 (the default) every step qualifies, preserving the original
    // per-step readback exactly.
    const bool record_now = (s + 1) % opts.record_every == 0 || last;
    const bool epoch_boundary = !last && (s + 1) % k == 0;
    if (record_now || epoch_boundary) {
      state->surface_rises(centres, rises);
      // case_rise is 0.0 without a package network, so the legacy readback
      // t_sink + rises[i] is preserved exactly.
      for (std::size_t i = 0; i < n; ++i) temps[i] = t_sink + case_rise + rises[i];
    }
    if (record_now) record(last ? opts.t_stop : (s + 1) * opts.dt, sum_leak, sum_dyn);
  }
  result.backend_stats = backend->cost_stats();
  return result;
}

}  // namespace ptherm::core
