// The paper's headline: the *concurrent* power-thermal solve. Leakage is
// exponential in temperature and temperature is set by dissipated power, so
// the two models must be solved simultaneously. This engine runs a damped
// Picard fixed point over block temperatures,
//     T_i  <-  T_sink + sum_j Rth_ij * P_j(T_j),
// where the thermal influence comes from a pluggable thermal::SolverBackend:
// the analytic image model (fast path, closed form only — the paper's
// point), the FDM reference (validation path), or the spectral
// Green's-function solver (fastest influence build; one mode-space multiply
// per column), and P_j(T) = P_dyn_j + VDD * I_off_j(T) from the compact
// leakage model. Divergence (leakage-thermal runaway) is detected and
// reported rather than hidden.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/diagnostics.hpp"
#include "core/influence.hpp"
#include "floorplan/compiled_leakage.hpp"
#include "floorplan/floorplan.hpp"
#include "telemetry/telemetry.hpp"
#include "thermal/backend.hpp"

namespace ptherm::core {

/// User-facing backend selector; `make_thermal_backend` maps it (plus the
/// per-backend option structs in CosimOptions) onto a thermal::SolverBackend.
enum class ThermalBackend { Analytic, Fdm, Spectral };

/// How the Picard fixed point applies the influence operator.
///  * Auto: matrix-free when the backend supports it (spectral), dense
///    otherwise — the right default at every scale.
///  * Dense: force the n x n matrix build even on a matrix-free-capable
///    backend (the equivalence reference; also what influence_matrix()
///    consumers get without a lazy rebuild).
///  * MatrixFree: require the matrix-free path; throws
///    ptherm::PreconditionError at construction if the backend has none.
enum class InfluenceMode { Auto, Dense, MatrixFree };

struct CosimOptions {
  ThermalBackend backend = ThermalBackend::Analytic;
  InfluenceMode influence = InfluenceMode::Auto;
  thermal::ImageOptions images;        ///< analytic backend settings
  thermal::FdmOptions fdm;             ///< FDM backend settings
  thermal::SpectralOptions spectral;   ///< spectral backend settings
  double damping = 0.7;                ///< Picard relaxation factor (0, 1]
  double tol = 1e-3;                   ///< convergence: max |dT| [K]
  int max_iterations = 200;
  double runaway_rise_limit = 400.0;   ///< rise above sink declared runaway [K]
  double vb = 0.0;                     ///< substrate (body) bias [V]
  /// Lumped package/heat-sink resistance [K/W]: adds a uniform rise
  /// R_pkg * P_total on top of the on-die spreading the thermal model
  /// resolves (the sink plane is then the package case, not the ambient).
  double r_package = 0.0;
  /// Die stack for the conduction problem (thermal/stack.hpp). Unset: the
  /// classic single-die problem from the floorplan's Die. Set: the FDM and
  /// spectral backends solve the layered stack (the analytic backend only
  /// accepts stacks that reduce to the die), and an RcNetwork boundary adds
  /// its total_resistance() to the steady boundary fold exactly like
  /// r_package (see boundary_fold_resistance) — the transient cosim is
  /// where the network's dynamics come alive.
  std::optional<thermal::DieStack> stack;
  /// Convergence-trace recording (telemetry/telemetry.hpp). With
  /// trace.convergence: CosimResult::picard_residuals records the Picard
  /// residual per iteration, and an FDM backend records its CG residual
  /// curves (FdmOptions::cg.trace is forced on). Recording only APPENDS to
  /// result vectors — the solve arithmetic is bitwise unchanged.
  telemetry::TraceOptions trace;
};

/// The ONE uniform boundary resistance [K/W] a steady cosim folds on top of
/// the conduction operator: r_package plus the stack boundary's RC-network
/// resistance (if any). Dense influence builds add it to every matrix entry
/// (InfluenceOperator::add_uniform); the matrix-free path folds
/// fold * sum(P) into the rises per Picard iteration. Both routes go through
/// this helper, so the two influence modes cannot drift apart — the
/// equivalence is pinned by tests.
[[nodiscard]] double boundary_fold_resistance(const CosimOptions& opts);

/// Builds the thermal backend `opts` selects, configured for `die`. The one
/// place that maps the user-facing enum onto concrete solver types — every
/// consumer (steady cosim, transient cosim, examples) goes through here, so
/// a new backend is one enum value plus one case.
[[nodiscard]] std::unique_ptr<thermal::SolverBackend> make_thermal_backend(
    const thermal::Die& die, const CosimOptions& opts);

/// Throws ptherm::PreconditionError if the Picard-iteration settings are
/// unusable (damping outside (0, 1], tol <= 0, max_iterations <= 0,
/// runaway_rise_limit <= 0, or r_package < 0).
void validate(const CosimOptions& opts);

/// Per-block leakage adjustment a scenario applies on top of the compiled
/// nominal model: a flat multiplier (gate-count / activity scaling) and a
/// threshold-voltage offset (process variation; leakage scales by
/// exp(-dVT0 / (n VT(T))), the Eq. (13) exponent — see device::VariationModel).
/// The defaults are bitwise transparent: scale 1 and dVT0 0 reproduce the
/// unadjusted leakage exactly, so nominal scenarios match the plain solver.
struct LeakageAdjust {
  double scale = 1.0;      ///< flat leakage multiplier
  double delta_vt0 = 0.0;  ///< threshold shift [V]
};

/// Adjusted block leakage power [W]: scale * exp(-dVT0/(n VT)) * base(T).
/// The ONE expression both the standalone solver (set_leakage_adjust) and
/// the batched scenario engine evaluate, so the two paths cannot drift —
/// batched-vs-sequential bitwise equivalence is pinned by tests.
[[nodiscard]] double adjusted_leakage_power(const device::Technology& tech,
                                            const floorplan::CompiledBlockLeakage& leakage,
                                            double temp, double vb,
                                            const LeakageAdjust& adj);

struct BlockState {
  double temperature = 0.0;  ///< [K]
  double p_dynamic = 0.0;    ///< [W]
  double p_leakage = 0.0;    ///< [W] at the converged temperature
  [[nodiscard]] double p_total() const noexcept { return p_dynamic + p_leakage; }
};

struct CosimResult {
  bool converged = false;
  bool runaway = false;
  int iterations = 0;
  std::vector<BlockState> blocks;
  double total_dynamic = 0.0;
  double total_leakage = 0.0;
  double max_temperature = 0.0;   ///< hottest block [K]
  double max_delta_last = 0.0;    ///< last iteration's max |dT| [K]
  /// Structured non-convergence context (common/diagnostics.hpp): set iff
  /// the Picard loop did not converge — stage "runaway" or "max-iterations",
  /// the iteration count, the last max |dT| [K], and the hottest block by
  /// name. Empty on converged solves.
  std::optional<SolveDiagnostics> diagnostics;
  /// With CosimOptions::trace.convergence: the Picard residual max |dT| [K]
  /// after each iteration (picard_residuals.size() == iterations;
  /// back() == max_delta_last). Empty when tracing is off.
  std::vector<double> picard_residuals;

  [[nodiscard]] double total_power() const noexcept { return total_dynamic + total_leakage; }
};

/// Runs the concurrent electro-thermal fixed point on a floorplan.
/// Technology and floorplan are copied in: the solver owns everything it
/// needs and cannot dangle (callers routinely pass temporaries).
class ElectroThermalSolver {
 public:
  ElectroThermalSolver(device::Technology tech, floorplan::Floorplan fp,
                       CosimOptions opts = {});

  [[nodiscard]] CosimResult solve();

  /// Leakage power of block `i` at temperature `temp` (exposed for tests and
  /// for the runaway-analysis bench). Evaluated through the compiled per-block
  /// program (floorplan/compiled_leakage.hpp) — bitwise equal to the Block
  /// walk, allocation-free — times the block's LeakageAdjust if one is set.
  [[nodiscard]] double block_leakage_power(std::size_t i, double temp) const;

  /// Installs per-block leakage adjustments (one per block; empty clears).
  /// This is how a single solver reproduces one scenario of a ScenarioBatch
  /// exactly — the sequential reference path of the batched engine's tests.
  void set_leakage_adjust(std::vector<LeakageAdjust> adjust);

  /// The influence-apply seam the Picard loop iterates through: dense in
  /// Dense mode (and on dense-only backends), the backend's matrix-free
  /// operator otherwise. In matrix-free mode the boundary fold (r_package +
  /// stack RC resistance) is NOT inside the operator — solve() folds it in
  /// analytically as boundary_fold_resistance(opts) * sum(P).
  [[nodiscard]] const thermal::InfluenceApply& influence_apply() const noexcept;

  /// Whether solve() runs matrix-free (no dense matrix was built).
  [[nodiscard]] bool matrix_free() const noexcept { return matrix_free_ != nullptr; }

  /// Thermal influence operator R[i][j] = rise at block i's centre per watt
  /// in block j [K/W] including r_package, as realised by the configured
  /// backend. Exposed because the runaway criterion (spectral condition
  /// R * dP/dT < 1) is an ablation bench and the RC network factorizes it.
  /// In matrix-free mode the dense matrix is realised lazily on first call —
  /// an O(n^2) diagnostic escape hatch the solve itself never pays.
  [[nodiscard]] const InfluenceOperator& influence_matrix() const;

  /// Cost counters from the influence build (FDM CG iterations, spectral
  /// modes/FFTs), for the perf-trajectory benches.
  [[nodiscard]] const InfluenceBuildStats& influence_build_stats() const noexcept {
    return influence_stats_;
  }

  /// The thermal backend this solver built R from — reusable for field maps
  /// of the converged power state (see examples/hotspot_analysis.cpp).
  [[nodiscard]] const thermal::SolverBackend& backend() const noexcept { return *backend_; }

  /// Compiled per-block leakage programs, one per block. ScenarioBatch
  /// evaluates per-scenario leakage through these same programs, so the two
  /// paths share one compilation (and cannot diverge).
  [[nodiscard]] const std::vector<floorplan::CompiledBlockLeakage>& compiled_leakage()
      const noexcept {
    return compiled_leakage_;
  }

 private:
  void build_influence();

  device::Technology tech_;
  floorplan::Floorplan fp_;
  CosimOptions opts_;
  /// Compiled leakage programs, one per block (see block_leakage_power).
  std::vector<floorplan::CompiledBlockLeakage> compiled_leakage_;
  /// Per-block scenario adjustments; empty means nominal.
  std::vector<LeakageAdjust> adjust_;
  std::unique_ptr<thermal::SolverBackend> backend_;
  /// Matrix-free operator (set iff the resolved mode is matrix-free).
  std::unique_ptr<thermal::InfluenceApply> matrix_free_;
  /// Dense operator: built eagerly in dense mode, lazily by
  /// influence_matrix() in matrix-free mode (mutable: realization is a
  /// cache, not observable state).
  mutable std::optional<InfluenceOperator> influence_;
  InfluenceBuildStats influence_stats_;
};

}  // namespace ptherm::core
