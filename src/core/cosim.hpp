// The paper's headline: the *concurrent* power-thermal solve. Leakage is
// exponential in temperature and temperature is set by dissipated power, so
// the two models must be solved simultaneously. This engine runs a damped
// Picard fixed point over block temperatures,
//     T_i  <-  T_sink + sum_j Rth_ij * P_j(T_j),
// where the thermal influence comes from either the analytic image model
// (fast path, closed form only — the paper's point) or the FDM reference
// (validation path), and P_j(T) = P_dyn_j + VDD * I_off_j(T) from the
// compact leakage model. Divergence (leakage-thermal runaway) is detected
// and reported rather than hidden.
#pragma once

#include <optional>
#include <vector>

#include "core/influence.hpp"
#include "floorplan/floorplan.hpp"
#include "thermal/fdm.hpp"
#include "thermal/images.hpp"

namespace ptherm::core {

enum class ThermalBackend { Analytic, Fdm };

struct CosimOptions {
  ThermalBackend backend = ThermalBackend::Analytic;
  thermal::ImageOptions images;        ///< analytic backend settings
  thermal::FdmOptions fdm;             ///< FDM backend settings
  double damping = 0.7;                ///< Picard relaxation factor (0, 1]
  double tol = 1e-3;                   ///< convergence: max |dT| [K]
  int max_iterations = 200;
  double runaway_rise_limit = 400.0;   ///< rise above sink declared runaway [K]
  double vb = 0.0;                     ///< substrate (body) bias [V]
  /// Lumped package/heat-sink resistance [K/W]: adds a uniform rise
  /// R_pkg * P_total on top of the on-die spreading the thermal model
  /// resolves (the sink plane is then the package case, not the ambient).
  double r_package = 0.0;
};

struct BlockState {
  double temperature = 0.0;  ///< [K]
  double p_dynamic = 0.0;    ///< [W]
  double p_leakage = 0.0;    ///< [W] at the converged temperature
  [[nodiscard]] double p_total() const noexcept { return p_dynamic + p_leakage; }
};

struct CosimResult {
  bool converged = false;
  bool runaway = false;
  int iterations = 0;
  std::vector<BlockState> blocks;
  double total_dynamic = 0.0;
  double total_leakage = 0.0;
  double max_temperature = 0.0;   ///< hottest block [K]
  double max_delta_last = 0.0;    ///< last iteration's max |dT| [K]

  [[nodiscard]] double total_power() const noexcept { return total_dynamic + total_leakage; }
};

/// Runs the concurrent electro-thermal fixed point on a floorplan.
/// Technology and floorplan are copied in: the solver owns everything it
/// needs and cannot dangle (callers routinely pass temporaries).
class ElectroThermalSolver {
 public:
  ElectroThermalSolver(device::Technology tech, floorplan::Floorplan fp,
                       CosimOptions opts = {});

  [[nodiscard]] CosimResult solve();

  /// Leakage power of block `i` at temperature `temp` (exposed for tests and
  /// for the runaway-analysis bench).
  [[nodiscard]] double block_leakage_power(std::size_t i, double temp) const;

  /// Thermal influence operator R[i][j] = rise at block i's centre per watt
  /// in block j [K/W], as realised by the configured backend. Built at
  /// construction; exposed because the runaway criterion (spectral condition
  /// R * dP/dT < 1) is an ablation bench.
  [[nodiscard]] const InfluenceOperator& influence_matrix() const noexcept { return influence_; }

  /// Cost counters from the influence build (FDM CG iterations etc.), for
  /// the perf-trajectory benches.
  [[nodiscard]] const InfluenceBuildStats& influence_build_stats() const noexcept {
    return influence_stats_;
  }

 private:
  void build_influence();

  device::Technology tech_;
  floorplan::Floorplan fp_;
  CosimOptions opts_;
  InfluenceOperator influence_;
  InfluenceBuildStats influence_stats_;
};

}  // namespace ptherm::core
