#include "core/rc_network.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "numerics/dense.hpp"
#include "numerics/ode.hpp"

namespace ptherm::core {

RcThermalNetwork::RcThermalNetwork(device::Technology tech, floorplan::Floorplan fp,
                                   RcNetworkOptions opts)
    : tech_(std::move(tech)), fp_(std::move(fp)), opts_(opts) {
  PTHERM_REQUIRE(!fp_.blocks().empty(), "RcThermalNetwork: empty floorplan");
  PTHERM_REQUIRE(opts_.dt > 0.0 && opts_.t_stop > opts_.dt, "RcThermalNetwork: bad grid");
  PTHERM_REQUIRE(opts_.depth_fraction > 0.0 && opts_.depth_fraction <= 1.0,
                 "RcThermalNetwork: depth_fraction in (0, 1]");

  // Influence operator from the steady solver (closed form by default), then
  // G = R^-1 via dense LU (N is the block count — tens, not thousands).
  ElectroThermalSolver steady(tech_, fp_, opts_.steady);
  const std::size_t n = steady.influence_matrix().size();
  const numerics::LuFactorization lu(steady.influence_matrix().matrix());
  g_.assign(n, std::vector<double>(n, 0.0));
  std::vector<double> unit(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    unit.assign(n, 0.0);
    unit[j] = 1.0;
    const auto col = lu.solve(unit);
    for (std::size_t i = 0; i < n; ++i) g_[i][j] = col[i];
  }

  const auto& die = fp_.die();
  c_blocks_.reserve(n);
  for (const auto& b : fp_.blocks()) {
    c_blocks_.push_back(die.cv_si * b.rect.area() * opts_.depth_fraction * die.thickness);
  }
}

TransientCosimResult RcThermalNetwork::solve(const ActivityProfile& activity) const {
  PTHERM_REQUIRE(static_cast<bool>(activity), "RcThermalNetwork: null activity profile");
  const auto& blocks = fp_.blocks();
  const std::size_t n = blocks.size();
  const double t_sink = fp_.die().t_sink;

  numerics::OdeRhs rhs = [&](double t, const std::vector<double>& temps) {
    std::vector<double> dT(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double p = blocks[i].p_dynamic * activity(i, t) +
                 blocks[i].leakage_power(tech_, temps[i], opts_.vb);
      for (std::size_t j = 0; j < n; ++j) p -= g_[i][j] * (temps[j] - t_sink);
      dT[i] = p / c_blocks_[i];
    }
    return dT;
  };

  const std::vector<double> t0(n, t_sink);
  const auto sol = numerics::rk4(rhs, t0, 0.0, opts_.t_stop, opts_.dt);

  TransientCosimResult result;
  for (std::size_t k = 0; k < sol.times.size(); ++k) {
    if (k % static_cast<std::size_t>(opts_.record_every) != 0 && k + 1 != sol.times.size()) {
      continue;
    }
    result.times.push_back(sol.times[k]);
    result.block_temps.push_back(sol.states[k]);
    double p_leak = 0.0, p_dyn = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      p_dyn += blocks[i].p_dynamic * activity(i, sol.times[k]);
      p_leak += blocks[i].leakage_power(tech_, sol.states[k][i], opts_.vb);
    }
    result.dynamic_power.push_back(p_dyn);
    result.leakage_power.push_back(p_leak);
  }
  return result;
}

}  // namespace ptherm::core
