#include "core/scenario_batch.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/error.hpp"
#include "power/dynamic.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/telemetry.hpp"

namespace ptherm::core {

void validate(const ScenarioBatchOptions& opts) {
  PTHERM_REQUIRE(opts.chunk >= 1, "ScenarioBatchOptions: chunk must be >= 1");
}

void for_each_chunk(std::size_t count, int chunk,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
  PTHERM_REQUIRE(chunk >= 1, "for_each_chunk: chunk must be >= 1");
  const std::size_t step = static_cast<std::size_t>(chunk);
  for (std::size_t begin = 0; begin < count; begin += step) {
    fn(begin, std::min(count, begin + step));
  }
}

ScenarioBatch::ScenarioBatch(device::Technology tech, floorplan::Floorplan fp,
                             CosimOptions opts, ScenarioBatchOptions batch)
    // The solver copies its arguments, leaving `tech` and `fp` intact for the
    // nominal-state capture below.
    : opts_(opts), batch_(batch), solver_(tech, fp, opts) {
  core::validate(batch_);
  t_sink_ = fp.die().t_sink;
  nominal_powers_.reserve(fp.blocks().size());
  block_names_.reserve(fp.blocks().size());
  for (const auto& block : fp.blocks()) {
    nominal_powers_.push_back(block.p_dynamic);
    block_names_.push_back(block.name);
  }
  Level nominal;
  nominal.voltage = tech.vdd;
  nominal.tech = std::move(tech);
  levels_.push_back(std::move(nominal));
}

int ScenarioBatch::add_vf_level(double voltage, double f_scale) {
  PTHERM_REQUIRE(voltage > 0.0 && f_scale > 0.0,
                 "add_vf_level: voltage and f_scale must be positive");
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    if (levels_[l].voltage == voltage && levels_[l].f_scale == f_scale) {
      return static_cast<int>(l);
    }
  }
  Level level;
  level.voltage = voltage;
  level.f_scale = f_scale;
  level.tech = device::at_supply(levels_[0].tech, voltage);
  // Dynamic scale through the power model (alpha f C VDD^2), same recipe as
  // the RTM actuator: the ratio against nominal is exactly (V/V0)^2 f_scale.
  const power::SwitchingContext ctx0;
  power::SwitchingContext ctx = ctx0;
  ctx.frequency = ctx0.frequency * f_scale;
  level.dynamic_scale =
      power::transient_power(level.tech, ctx) / power::transient_power(levels_[0].tech, ctx0);
  levels_.push_back(std::move(level));
  return static_cast<int>(levels_.size()) - 1;
}

const device::Technology& ScenarioBatch::level_technology(int level) const {
  PTHERM_REQUIRE(level >= 0 && level < level_count(),
                 "level_technology: level out of range");
  return levels_[static_cast<std::size_t>(level)].tech;
}

double ScenarioBatch::level_dynamic_scale(int level) const {
  PTHERM_REQUIRE(level >= 0 && level < level_count(),
                 "level_dynamic_scale: level out of range");
  return levels_[static_cast<std::size_t>(level)].dynamic_scale;
}

std::size_t ScenarioBatch::add_scenario(std::vector<double> p_dynamic,
                                        std::vector<LeakageAdjust> adjust, int level) {
  const std::size_t n = block_count();
  PTHERM_REQUIRE(p_dynamic.size() == n, "add_scenario: need one dynamic power per block");
  PTHERM_REQUIRE(adjust.empty() || adjust.size() == n,
                 "add_scenario: need one adjustment per block (or none)");
  PTHERM_REQUIRE(level >= 0 && level < level_count(), "add_scenario: level out of range");
  powers_.insert(powers_.end(), p_dynamic.begin(), p_dynamic.end());
  if (adjust.empty()) {
    adj_scale_.insert(adj_scale_.end(), n, 1.0);
    adj_dvt0_.insert(adj_dvt0_.end(), n, 0.0);
  } else {
    for (const LeakageAdjust& a : adjust) {
      adj_scale_.push_back(a.scale);
      adj_dvt0_.push_back(a.delta_vt0);
    }
  }
  level_index_.push_back(static_cast<std::int32_t>(level));
  return level_index_.size() - 1;
}

std::size_t ScenarioBatch::add_nominal(int level) {
  PTHERM_REQUIRE(level >= 0 && level < level_count(), "add_nominal: level out of range");
  const double scale = levels_[static_cast<std::size_t>(level)].dynamic_scale;
  std::vector<double> powers = nominal_powers_;
  for (double& p : powers) p *= scale;  // scale 1.0 at level 0: bitwise no-op
  return add_scenario(std::move(powers), {}, level);
}

std::size_t ScenarioBatch::add_variation_samples(const device::VariationModel& var, int count,
                                                 std::uint64_t base_seed) {
  PTHERM_REQUIRE(count > 0, "add_variation_samples: count must be > 0");
  const std::size_t n = block_count();
  const std::size_t first = size();
  for (int s = 0; s < count; ++s) {
    // Stream index = call-local sample number: sample s's offsets are bitwise
    // the same whether it is queued alone or among millions.
    const std::vector<double> dvt0 =
        var.sample_scenario_delta_vt0(n, base_seed, static_cast<std::uint64_t>(s));
    std::vector<LeakageAdjust> adjust(n);
    for (std::size_t j = 0; j < n; ++j) adjust[j].delta_vt0 = dvt0[j];
    add_scenario(nominal_powers_, std::move(adjust), 0);
  }
  return first;
}

std::size_t ScenarioBatch::add_vf_corner(double voltage, double f_scale,
                                         std::vector<LeakageAdjust> adjust) {
  const int level = add_vf_level(voltage, f_scale);
  const double scale = levels_[static_cast<std::size_t>(level)].dynamic_scale;
  std::vector<double> powers = nominal_powers_;
  for (double& p : powers) p *= scale;
  return add_scenario(std::move(powers), std::move(adjust), level);
}

std::span<const double> ScenarioBatch::scenario_powers(std::size_t k) const {
  PTHERM_REQUIRE(k < size(), "scenario_powers: scenario out of range");
  return {powers_.data() + k * block_count(), block_count()};
}

std::vector<LeakageAdjust> ScenarioBatch::scenario_adjust(std::size_t k) const {
  PTHERM_REQUIRE(k < size(), "scenario_adjust: scenario out of range");
  const std::size_t n = block_count();
  std::vector<LeakageAdjust> adjust(n);
  for (std::size_t j = 0; j < n; ++j) {
    adjust[j].scale = adj_scale_[k * n + j];
    adjust[j].delta_vt0 = adj_dvt0_[k * n + j];
  }
  return adjust;
}

int ScenarioBatch::scenario_level(std::size_t k) const {
  PTHERM_REQUIRE(k < size(), "scenario_level: scenario out of range");
  return level_index_[k];
}

std::vector<ScenarioResult> ScenarioBatch::solve_all() {
  TELEMETRY_SPAN("batch/solve_all");
  std::vector<ScenarioResult> results(size());
  for_each_chunk(size(), batch_.chunk, [&](std::size_t begin, std::size_t end) {
    run_chunk(begin, end, results);
  });
  return results;
}

// One chunk of scenarios through the blocked Picard sweep. Per iteration:
// pack the active scenarios' power vectors (dynamic + adjusted leakage at the
// current temperatures), issue ONE multi-RHS influence apply over all of
// them, then run each active scenario's fold / damped update / runaway /
// convergence logic — exactly the statements ElectroThermalSolver::solve
// executes, in the same order on the same values, so each scenario's
// trajectory is bitwise the standalone one. Finished scenarios leave the
// active list (ascending order preserved: a scenario's packed slot index
// never affects its arithmetic, only its memory placement).
void ScenarioBatch::run_chunk(std::size_t begin, std::size_t end,
                              std::vector<ScenarioResult>& results) {
  TELEMETRY_SPAN("batch/chunk");
  const std::size_t n = block_count();
  const std::size_t count = end - begin;
  const auto& compiled = solver_.compiled_leakage();
  const thermal::InfluenceApply& influence = solver_.influence_apply();
  // Same split as the standalone solve: dense mode carries the boundary fold
  // inside the matrix; matrix-free folds r * sum(P) per iteration.
  const double r_pkg = solver_.matrix_free() ? boundary_fold_resistance(opts_) : 0.0;

  std::vector<double> temps(count * n, t_sink_);
  std::vector<double> prev_delta(count, 0.0);
  std::vector<int> growth_streak(count, 0);
  std::vector<std::size_t> active(count);  // chunk-local indices, ascending
  std::iota(active.begin(), active.end(), std::size_t{0});

  std::vector<double> powers(count * n);
  std::vector<double> rises(count * n);

  long long sweeps = 0;
  const auto finalize = [&](std::size_t local) {
    const std::size_t k = begin + local;
    ScenarioResult& res = results[k];
    const double* temp = temps.data() + local * n;
    const double* p_dyn = powers_.data() + k * n;
    const device::Technology& tech = levels_[static_cast<std::size_t>(level_index_[k])].tech;
    res.temperatures.assign(temp, temp + n);
    std::size_t hottest = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const LeakageAdjust adj{adj_scale_[k * n + i], adj_dvt0_[k * n + i]};
      res.total_dynamic += p_dyn[i];
      res.total_leakage += adjusted_leakage_power(tech, compiled[i], temp[i], opts_.vb, adj);
      res.max_temperature = std::max(res.max_temperature, temp[i]);
      if (temp[i] > temp[hottest]) hottest = i;
    }
    if (!res.converged) {
      SolveDiagnostics diag;
      diag.solver = "ScenarioBatch";
      diag.stage = "scenario " + std::to_string(k) +
                   (res.runaway ? ": runaway" : ": max-iterations");
      diag.iterations = res.iterations;
      diag.residual = res.max_delta_last;
      diag.worst = block_names_[hottest];
      res.diagnostics = std::move(diag);
    }
  };

  for (int it = 0; it < opts_.max_iterations && !active.empty(); ++it) {
    const std::size_t m = active.size();
    for (std::size_t a = 0; a < m; ++a) {
      const std::size_t local = active[a];
      const std::size_t k = begin + local;
      const double* temp = temps.data() + local * n;
      const double* p_dyn = powers_.data() + k * n;
      const device::Technology& tech =
          levels_[static_cast<std::size_t>(level_index_[k])].tech;
      double* p = powers.data() + a * n;
      for (std::size_t j = 0; j < n; ++j) {
        const LeakageAdjust adj{adj_scale_[k * n + j], adj_dvt0_[k * n + j]};
        p[j] = p_dyn[j] + adjusted_leakage_power(tech, compiled[j], temp[j], opts_.vb, adj);
      }
    }
    influence.apply_batch({powers.data(), m * n}, {rises.data(), m * n}, m);
    ++sweeps;
    double sweep_max_delta = 0.0;

    std::size_t keep = 0;
    for (std::size_t a = 0; a < m; ++a) {
      const std::size_t local = active[a];
      const std::size_t k = begin + local;
      ScenarioResult& res = results[k];
      res.iterations = it + 1;
      double* temp = temps.data() + local * n;
      const double* p = powers.data() + a * n;
      double* rise = rises.data() + a * n;
      if (r_pkg > 0.0) {
        double p_total = 0.0;
        for (std::size_t j = 0; j < n; ++j) p_total += p[j];
        const double pkg_rise = r_pkg * p_total;
        for (std::size_t i = 0; i < n; ++i) rise[i] += pkg_rise;
      }
      double max_delta = 0.0;
      double max_rise = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double target = t_sink_ + rise[i];
        const double updated = temp[i] + opts_.damping * (target - temp[i]);
        max_delta = std::max(max_delta, std::abs(updated - temp[i]));
        temp[i] = updated;
        max_rise = std::max(max_rise, temp[i] - t_sink_);
      }
      res.max_delta_last = max_delta;
      if (opts_.trace.convergence) res.picard_residuals.push_back(max_delta);
      sweep_max_delta = std::max(sweep_max_delta, max_delta);

      bool done = false;
      if (max_rise > opts_.runaway_rise_limit) {
        res.runaway = true;
        done = true;
      } else {
        if (max_delta > prev_delta[local] && it > 0) {
          if (++growth_streak[local] >= 10) {
            res.runaway = true;
            done = true;
          }
        } else {
          growth_streak[local] = 0;
        }
        if (!done) {
          prev_delta[local] = max_delta;
          if (max_delta < opts_.tol) {
            res.converged = true;
            done = true;
          }
        }
      }

      if (done) {
        finalize(local);
      } else {
        active[keep++] = local;  // compaction keeps ascending order
      }
    }
    if (opts_.trace.convergence) {
      trace_.active_per_sweep.push_back(static_cast<long long>(m));
      trace_.max_residual_per_sweep.push_back(sweep_max_delta);
    }
    active.resize(keep);
  }
  // Survivors of max_iterations: not converged, not runaway — same verdict a
  // standalone solve reaches when its loop runs out.
  for (const std::size_t local : active) finalize(local);

  long long iterations_sum = 0;
  for (std::size_t k = begin; k < end; ++k) iterations_sum += results[k].iterations;
  stats_.scenarios += static_cast<long long>(count);
  stats_.batched_matvecs += sweeps;
  stats_.picard_iterations_total += iterations_sum;
  // Scenario-iterations the masks avoided: without masking every scenario
  // would ride all `sweeps` blocked applies.
  stats_.masked_iterations_saved += static_cast<long long>(count) * sweeps - iterations_sum;
}

thermal::BackendCostStats ScenarioBatch::cost_stats() const {
  // Merge = two contributes into one registry (the batch counters land on
  // the same backend/ names their mirror fields carry), then read the struct
  // back through the catalog — field-complete by the catalog's static_assert
  // instead of by a hand-maintained copy list.
  telemetry::Registry reg;
  telemetry::contribute(reg, solver_.backend().cost_stats());
  telemetry::contribute(reg, stats_);
  return telemetry::backend_cost_from(reg);
}

}  // namespace ptherm::core
