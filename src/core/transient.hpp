// Transient electro-thermal co-simulation: the time-domain counterpart of
// the steady concurrent solve. Dynamic power follows a caller-supplied
// activity profile; leakage is re-evaluated from each block's instantaneous
// temperature at every step (the electro-thermal feedback); heat diffuses
// through a transient-capable thermal::SolverBackend — the FDM substrate
// with backward Euler (the numerical reference) or the spectral solver with
// exact per-mode exponential integrators (one mode-space update per step,
// no linear solve). A backend without transient support is rejected at
// entry.
//
// The paper stops at the steady problem; this module is the natural
// extension its §5 implies ("compact analytical models for electro-thermal
// simulation of ULSI circuits") and what a user needs for power-step /
// thermal-cycling studies.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/cosim.hpp"
#include "floorplan/floorplan.hpp"

namespace ptherm::core {

/// Multiplier on each block's nominal dynamic power at time t (seconds).
/// Index is the block index; return 1.0 for "nominal activity".
using ActivityProfile = std::function<double(std::size_t block, double t)>;

/// Per-epoch power update: invoked at the start of control epoch `epoch`
/// (time `t`, block temperatures `temps` at that instant) to fill the
/// per-block dynamic and leakage powers that are then HELD CONSTANT for the
/// next `power_update_every` steps. This is the seam runtime-thermal-
/// management drivers (rtm/simulator.hpp) plug into: sense -> decide ->
/// actuate happens inside the hook, so the control loop rides the cosim's
/// own time integration instead of re-entering it from outside.
using PowerUpdateHook =
    std::function<void(long long epoch, double t, std::span<const double> temps,
                       std::span<double> p_dynamic, std::span<double> p_leakage)>;

struct TransientCosimOptions {
  /// Thermal backend for the time integration; must support transients
  /// (Fdm or Spectral). The enum keeps transient and steady selection
  /// uniform; the default stays the FDM reference.
  ThermalBackend backend = ThermalBackend::Fdm;
  thermal::FdmOptions fdm;            ///< FDM backend settings
  thermal::SpectralOptions spectral;  ///< spectral backend settings
  double dt = 1e-4;          ///< time step [s]
  double t_stop = 20e-3;     ///< end time [s]
  double vb = 0.0;           ///< substrate bias [V]
  int record_every = 1;      ///< keep every k-th step in the result
  /// Steps per power-update epoch: block powers are re-evaluated every
  /// `power_update_every` steps (from the activity profile and the
  /// instantaneous temperatures, or from a PowerUpdateHook) and held
  /// constant in between. 1 — the default, and the original semantics —
  /// re-couples power and temperature every step. Longer epochs also skip
  /// the per-step temperature readback on interior steps: on the spectral
  /// backend an interior step collapses to the pure mode-decay update,
  /// which is what makes million-step DVFS traces affordable.
  int power_update_every = 1;
  /// Die stack (thermal/stack.hpp) for the conduction problem; unset keeps
  /// the classic single-die problem. When the stack's boundary is an
  /// attached RC package network, the case temperature becomes a DYNAMIC
  /// state of this co-simulation: the network is advanced exactly once per
  /// step under the total die power, and every block temperature reads
  /// t_sink + case_rise + on-die rise — so leakage, and any control policy
  /// riding the PowerUpdateHook, feel the package/heatsink time constants.
  /// The constant-sink legacy behaviour is the zero-capacity limit.
  std::optional<thermal::DieStack> stack;
  /// Convergence-trace recording (telemetry/telemetry.hpp). With
  /// trace.convergence: TransientCosimResult::step_inner_iterations records
  /// the inner backend iterations per time step. Recording only APPENDS —
  /// the integration arithmetic is bitwise unchanged.
  telemetry::TraceOptions trace;
};

/// Throws ptherm::PreconditionError on an unusable time grid
/// (dt <= 0, t_stop < dt, record_every < 1, or power_update_every < 1).
/// A single-step run (t_stop == dt) is legitimate.
void validate(const TransientCosimOptions& opts);

struct TransientCosimResult {
  std::vector<double> times;
  /// block_temps[k][i] = temperature of block i at times[k] [K].
  std::vector<std::vector<double>> block_temps;
  /// Total leakage power at each recorded time [W].
  std::vector<double> leakage_power;
  /// Total dynamic power at each recorded time [W].
  std::vector<double> dynamic_power;
  /// Package case rise above ambient at each recorded time [K]; all zeros
  /// unless the options carried a stack with an RC-network boundary.
  std::vector<double> case_rise;
  /// Total inner backend iterations across all steps. The name is
  /// historical: on the FDM backend these are CG iterations; other backends
  /// report their own unit of inner work (spectral: one exact mode-space
  /// update per step), so read it as "generic backend iterations".
  int total_cg_iterations = 0;
  /// Backend cost counters for the whole run (steps served, CG iterations,
  /// modes carried, FFT calls) — the perf-trajectory benches read these.
  thermal::BackendCostStats backend_stats;
  /// With TransientCosimOptions::trace.convergence: inner backend iterations
  /// per time step, in step order (size == steps taken; sums to
  /// total_cg_iterations). Empty when tracing is off.
  std::vector<int> step_inner_iterations;

  [[nodiscard]] double peak_temperature() const;
};

/// Runs the transient co-simulation from a uniform sink-temperature start.
/// Dynamic power follows `activity`; leakage is re-evaluated from each
/// block's instantaneous temperature at every power-update epoch (every
/// step by default).
TransientCosimResult solve_transient_cosim(const device::Technology& tech,
                                           const floorplan::Floorplan& fp,
                                           const ActivityProfile& activity,
                                           const TransientCosimOptions& opts = {});

/// Hook-driven variant: the caller owns the power model. `hook` is invoked
/// once per power-update epoch (including epoch 0 at t = 0 with every block
/// at the sink temperature) and the powers it writes are held for the whole
/// epoch. The activity-profile overload is exactly this with a hook that
/// evaluates `activity` and the floorplan's leakage model.
TransientCosimResult solve_transient_cosim(const device::Technology& tech,
                                           const floorplan::Floorplan& fp,
                                           const PowerUpdateHook& hook,
                                           const TransientCosimOptions& opts = {});

}  // namespace ptherm::core
