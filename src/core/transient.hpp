// Transient electro-thermal co-simulation: the time-domain counterpart of
// the steady concurrent solve. Dynamic power follows a caller-supplied
// activity profile; leakage is re-evaluated from each block's instantaneous
// temperature at every step (the electro-thermal feedback); heat diffuses
// through a transient-capable thermal::SolverBackend — the FDM substrate
// with backward Euler (the numerical reference) or the spectral solver with
// exact per-mode exponential integrators (one mode-space update per step,
// no linear solve). A backend without transient support is rejected at
// entry.
//
// The paper stops at the steady problem; this module is the natural
// extension its §5 implies ("compact analytical models for electro-thermal
// simulation of ULSI circuits") and what a user needs for power-step /
// thermal-cycling studies.
#pragma once

#include <functional>
#include <vector>

#include "core/cosim.hpp"
#include "floorplan/floorplan.hpp"

namespace ptherm::core {

/// Multiplier on each block's nominal dynamic power at time t (seconds).
/// Index is the block index; return 1.0 for "nominal activity".
using ActivityProfile = std::function<double(std::size_t block, double t)>;

struct TransientCosimOptions {
  /// Thermal backend for the time integration; must support transients
  /// (Fdm or Spectral). The enum keeps transient and steady selection
  /// uniform; the default stays the FDM reference.
  ThermalBackend backend = ThermalBackend::Fdm;
  thermal::FdmOptions fdm;            ///< FDM backend settings
  thermal::SpectralOptions spectral;  ///< spectral backend settings
  double dt = 1e-4;          ///< time step [s]
  double t_stop = 20e-3;     ///< end time [s]
  double vb = 0.0;           ///< substrate bias [V]
  int record_every = 1;      ///< keep every k-th step in the result
};

/// Throws ptherm::PreconditionError on an unusable time grid
/// (dt <= 0, t_stop < dt, or record_every < 1). A single-step run
/// (t_stop == dt) is legitimate.
void validate(const TransientCosimOptions& opts);

struct TransientCosimResult {
  std::vector<double> times;
  /// block_temps[k][i] = temperature of block i at times[k] [K].
  std::vector<std::vector<double>> block_temps;
  /// Total leakage power at each recorded time [W].
  std::vector<double> leakage_power;
  /// Total dynamic power at each recorded time [W].
  std::vector<double> dynamic_power;
  /// Total inner backend iterations across all steps. The name is
  /// historical: on the FDM backend these are CG iterations; other backends
  /// report their own unit of inner work (spectral: one exact mode-space
  /// update per step), so read it as "generic backend iterations".
  int total_cg_iterations = 0;
  /// Backend cost counters for the whole run (steps served, CG iterations,
  /// modes carried, FFT calls) — the perf-trajectory benches read these.
  thermal::BackendCostStats backend_stats;

  [[nodiscard]] double peak_temperature() const;
};

/// Runs the transient co-simulation from a uniform sink-temperature start.
TransientCosimResult solve_transient_cosim(const device::Technology& tech,
                                           const floorplan::Floorplan& fp,
                                           const ActivityProfile& activity,
                                           const TransientCosimOptions& opts = {});

}  // namespace ptherm::core
