// Umbrella header: the full public surface of the ptherm library.
//
// Layering (each header is independently includable):
//   common/    units, constants, tables, RNG, error types
//   numerics/  roots, quadrature, dense/sparse linear algebra, ODE, interp
//   device/    technology descriptors and the Eq. (1)/(2) MOSFET models
//   spice/     MNA circuit solver (the "SPICE simulations" baseline)
//   leakage/   stack collapse (Eqs. 3-13), gates, exact solver, baselines
//   thermal/   analytic profile + images (Eqs. 16-21), FDM reference, RC
//   power/     dynamic + short-circuit power
//   netlist/   standard cells and gate-level leakage statistics
//   floorplan/ blocks, die, synthetic power maps
//   scaling/   roadmap behind the Fig. 1 reproduction
//   core/      the concurrent electro-thermal solver
//   rtm/       runtime thermal management: traces, DVFS actuation, sensors,
//              policies, and the closed-loop driver over the transient cosim
#pragma once

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/cosim.hpp"
#include "core/rc_network.hpp"
#include "core/transient.hpp"
#include "device/mosfet.hpp"
#include "device/tech.hpp"
#include "device/variation.hpp"
#include "floorplan/floorplan.hpp"
#include "floorplan/generators.hpp"
#include "leakage/baselines.hpp"
#include "leakage/collapse.hpp"
#include "leakage/exact_stack.hpp"
#include "leakage/gate.hpp"
#include "leakage/spnet.hpp"
#include "netlist/cells.hpp"
#include "netlist/netlist.hpp"
#include "power/dynamic.hpp"
#include "rtm/actuator.hpp"
#include "rtm/policy.hpp"
#include "rtm/sensor.hpp"
#include "rtm/simulator.hpp"
#include "rtm/trace.hpp"
#include "scaling/roadmap.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/export.hpp"
#include "spice/transient.hpp"
#include "thermal/analytic.hpp"
#include "thermal/backend.hpp"
#include "thermal/fdm.hpp"
#include "thermal/images.hpp"
#include "thermal/map_io.hpp"
#include "thermal/rc.hpp"
#include "thermal/spectral.hpp"
