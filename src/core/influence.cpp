#include "core/influence.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace ptherm::core {

InfluenceOperator::InfluenceOperator(numerics::Matrix r) : r_(std::move(r)) {
  PTHERM_REQUIRE(r_.rows() == r_.cols(), "InfluenceOperator: matrix must be square");
}

double InfluenceOperator::at(std::size_t i, std::size_t j) const {
  PTHERM_REQUIRE(i < size() && j < size(), "InfluenceOperator: index out of range");
  return r_(i, j);
}

void InfluenceOperator::add_uniform(double resistance) {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) r_(i, j) += resistance;
  }
}

void InfluenceOperator::apply(std::span<const double> powers, std::span<double> rises) const {
  r_.multiply(powers, rises);
}

std::vector<double> InfluenceOperator::apply(std::span<const double> powers) const {
  return r_.multiply(powers);
}

std::vector<InfluenceSample> block_centre_samples(const floorplan::Floorplan& fp) {
  std::vector<InfluenceSample> samples;
  samples.reserve(fp.blocks().size());
  for (const auto& b : fp.blocks()) samples.push_back({b.rect.cx(), b.rect.cy()});
  return samples;
}

InfluenceOperator build_influence_analytic(const thermal::Die& die,
                                           std::vector<thermal::HeatSource> sources,
                                           std::span<const InfluenceSample> samples,
                                           const thermal::ImageOptions& opts) {
  const std::size_t n = sources.size();
  PTHERM_REQUIRE(n > 0, "build_influence_analytic: no sources");
  PTHERM_REQUIRE(samples.size() == n, "build_influence_analytic: need one sample per source");
  numerics::Matrix r(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<thermal::HeatSource> one = {sources[j]};
    one[0].power = 1.0;
    const thermal::ChipThermalModel model(die, std::move(one), opts);
    for (std::size_t i = 0; i < n; ++i) r(i, j) = model.rise(samples[i].x, samples[i].y);
  }
  return InfluenceOperator(std::move(r));
}

InfluenceOperator build_influence_fdm(const thermal::FdmThermalSolver& solver,
                                      std::vector<thermal::HeatSource> sources,
                                      std::span<const InfluenceSample> samples, bool warm_start,
                                      InfluenceBuildStats* stats) {
  const std::size_t n = sources.size();
  PTHERM_REQUIRE(n > 0, "build_influence_fdm: no sources");
  PTHERM_REQUIRE(samples.size() == n, "build_influence_fdm: need one sample per source");
  numerics::Matrix r(n, n);
  InfluenceBuildStats local;
  std::vector<double> prev;  // previous column's converged field
  std::vector<double> x0;    // translated warm-start scratch
  double prev_cx = 0.0;
  double prev_cy = 0.0;
  const int nx = solver.nx();
  const int ny = solver.ny();
  const int nz = solver.nz();
  const double dx = solver.die().width / nx;
  const double dy = solver.die().height / ny;
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<thermal::HeatSource> one = {sources[j]};
    one[0].power = 1.0;
    const std::vector<double>* start = nullptr;
    if (warm_start && !prev.empty()) {
      // Adjacent blocks have near-identical fields up to a lateral shift, so
      // the previous column's field translated (edge-replicated) onto this
      // column's source position is a far better first iterate than the
      // unshifted field — unit-source right-hand sides are nearly disjoint,
      // which makes the plain previous iterate no better than zero.
      const int di = static_cast<int>(std::lround((sources[j].cx - prev_cx) / dx));
      const int dj = static_cast<int>(std::lround((sources[j].cy - prev_cy) / dy));
      x0.resize(prev.size());
      for (int k = 0; k < nz; ++k) {
        for (int jj = 0; jj < ny; ++jj) {
          const int sj = std::clamp(jj - dj, 0, ny - 1);
          for (int ii = 0; ii < nx; ++ii) {
            const int si = std::clamp(ii - di, 0, nx - 1);
            x0[solver.cell_index(ii, jj, k)] = prev[solver.cell_index(si, sj, k)];
          }
        }
      }
      start = &x0;
    }
    auto sol = solver.solve_steady(one, start);
    if (!sol.converged) {
      std::ostringstream os;
      os << "influence: FDM solve for column " << j << " failed: "
         << (sol.breakdown ? "CG breakdown (operator not positive definite)"
                           : "CG hit the iteration limit")
         << ", relative residual " << sol.residual << " after " << sol.cg_iterations
         << " iterations";
      PTHERM_REQUIRE(sol.converged, os.str());
    }
    local.cg_iterations += sol.cg_iterations;
    ++local.columns;
    for (std::size_t i = 0; i < n; ++i) {
      r(i, j) = solver.surface_rise(sol, samples[i].x, samples[i].y);
    }
    prev = std::move(sol.rise);
    prev_cx = sources[j].cx;
    prev_cy = sources[j].cy;
  }
  if (stats != nullptr) *stats = local;
  return InfluenceOperator(std::move(r));
}

}  // namespace ptherm::core
