#include "core/influence.hpp"

#include <utility>

#include "common/error.hpp"
#include "telemetry/counters.hpp"

namespace ptherm::core {

InfluenceBuildStats influence_stats_from(const thermal::BackendCostStats& cost) {
  // Through the registry, not a field-by-field copy: the backend counters
  // contribute under their catalog names and the influence view reads the
  // same names back, so both sides share one mapping (telemetry/counters.cpp
  // statically asserts the catalog covers every field).
  telemetry::Registry reg;
  telemetry::contribute(reg, cost);
  return telemetry::influence_build_from(reg);
}

InfluenceOperator::InfluenceOperator(numerics::Matrix r) : r_(std::move(r)) {
  PTHERM_REQUIRE(r_.rows() == r_.cols(), "InfluenceOperator: matrix must be square");
}

double InfluenceOperator::at(std::size_t i, std::size_t j) const {
  PTHERM_REQUIRE(i < size() && j < size(), "InfluenceOperator: index out of range");
  return r_(i, j);
}

void InfluenceOperator::add_uniform(double resistance) {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) r_(i, j) += resistance;
  }
}

void InfluenceOperator::apply(std::span<const double> powers, std::span<double> rises) const {
  // The documented contract, enforced: a silent mismatch would be an
  // out-of-bounds matvec.
  PTHERM_REQUIRE(powers.size() == size() && rises.size() == size(),
                 "InfluenceOperator::apply: powers/rises must have size() elements");
  r_.multiply(powers, rises);
}

std::vector<double> InfluenceOperator::apply(std::span<const double> powers) const {
  PTHERM_REQUIRE(powers.size() == size(),
                 "InfluenceOperator::apply: powers must have size() elements");
  return r_.multiply(powers);
}

void InfluenceOperator::apply_batch(std::span<const double> powers, std::span<double> rises,
                                    std::size_t count) const {
  PTHERM_REQUIRE(powers.size() == count * size() && rises.size() == count * size(),
                 "InfluenceOperator::apply_batch: powers/rises must have count * size() "
                 "elements");
  r_.multiply_batch(powers, rises, count);
}

std::vector<InfluenceSample> block_centre_samples(const floorplan::Floorplan& fp) {
  std::vector<InfluenceSample> samples;
  samples.reserve(fp.blocks().size());
  for (const auto& b : fp.blocks()) samples.push_back({b.rect.cx(), b.rect.cy()});
  return samples;
}

InfluenceOperator build_influence_analytic(const thermal::Die& die,
                                           std::vector<thermal::HeatSource> sources,
                                           std::span<const InfluenceSample> samples,
                                           const thermal::ImageOptions& opts) {
  return InfluenceOperator(thermal::analytic_influence_columns(die, sources, samples, opts));
}

InfluenceOperator build_influence_fdm(const thermal::FdmThermalSolver& solver,
                                      std::vector<thermal::HeatSource> sources,
                                      std::span<const InfluenceSample> samples, bool warm_start,
                                      InfluenceBuildStats* stats) {
  thermal::BackendCostStats cost;
  auto r = thermal::fdm_influence_columns(solver, sources, samples, warm_start, &cost);
  if (stats != nullptr) *stats = influence_stats_from(cost);
  return InfluenceOperator(std::move(r));
}

InfluenceOperator build_influence_spectral(const thermal::SpectralThermalSolver& solver,
                                           std::vector<thermal::HeatSource> sources,
                                           std::span<const InfluenceSample> samples,
                                           InfluenceBuildStats* stats) {
  thermal::BackendCostStats cost;
  auto r = thermal::spectral_influence_columns(solver, sources, samples, &cost);
  if (stats != nullptr) *stats = influence_stats_from(cost);
  return InfluenceOperator(std::move(r));
}

}  // namespace ptherm::core
