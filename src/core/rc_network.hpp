// Compact block-level thermal RC network: the fast-transient counterpart of
// the analytic steady model (a HotSpot-flavoured reduction). The steady
// coupling comes from the influence matrix R (rise per watt, closed form);
// inverting it gives the conductance network G = R^-1, and a lumped heat
// capacity per block turns the die into N coupled ODEs:
//
//     C_i dT_i/dt = P_i(T_i) - sum_j G_ij (T_j - T_sink).
//
// This trades the FDM transient's spatial fidelity for ~10^3x speed, which
// is the paper's design philosophy applied to the time domain. Accuracy vs
// the FDM transient is characterised in tests (same steady state by
// construction; time constants agree to tens of percent, the fidelity a
// single-pole-per-block reduction can offer).
#pragma once

#include <functional>
#include <vector>

#include "core/cosim.hpp"
#include "core/transient.hpp"

namespace ptherm::core {

struct RcNetworkOptions {
  CosimOptions steady;        ///< backend/settings used to build R
  double dt = 5e-5;           ///< integration step [s]
  double t_stop = 20e-3;      ///< end time [s]
  double vb = 0.0;
  int record_every = 1;
  /// Effective participating substrate depth for the lumped block capacity
  /// C_i = cv * area_i * depth_fraction * thickness. A fit, as every lumped
  /// reduction of a diffusion is; 0.6 matches the FDM transient's dominant
  /// time constant for millimetre-scale dies (see tests).
  double depth_fraction = 0.6;
};

/// Compact transient solver; reusable across runs (the expensive parts —
/// influence matrix and its factorization — are built once).
class RcThermalNetwork {
 public:
  RcThermalNetwork(device::Technology tech, floorplan::Floorplan fp,
                   RcNetworkOptions opts = {});

  /// Integrates the coupled electro-thermal ODEs with RK4 from a uniform
  /// sink-temperature start. Same result contract as the FDM transient.
  [[nodiscard]] TransientCosimResult solve(const ActivityProfile& activity) const;

  /// Block heat capacities [J/K] (exposed for tests).
  [[nodiscard]] const std::vector<double>& capacitances() const noexcept {
    return c_blocks_;
  }
  /// Conductance matrix G = R^-1 [W/K].
  [[nodiscard]] const std::vector<std::vector<double>>& conductances() const noexcept {
    return g_;
  }

 private:
  device::Technology tech_;
  floorplan::Floorplan fp_;
  RcNetworkOptions opts_;
  std::vector<std::vector<double>> g_;
  std::vector<double> c_blocks_;
};

}  // namespace ptherm::core
