// Thermal influence operator: the dense block-to-block coupling R[i][j] =
// rise at sample point i per watt injected in block j [K/W] that the
// concurrent electro-thermal fixed point iterates on. Every thermal backend
// is linear in injected power, so the operator captures them exactly; it is
// precomputed once and the Picard loop then costs one dense matvec per
// iteration (flat row-major storage, no pointer chasing).
//
// Construction is batched per column by the backend layer
// (thermal/backend.hpp):
//  * Analytic: a single-source image model per column evaluates only that
//    column's mirror images.
//  * FDM: one solver (one stencil assembly + one IC(0) factorization) for
//    every column, each unit-source CG warm-started from the previous
//    column's field translated onto the new source position.
//  * Spectral: one mode-space multiply per column — no linear solve at all.
// The free builders below keep the caller-owned-solver form for benches and
// tests; `ElectroThermalSolver` itself goes through `thermal::SolverBackend`.
#pragma once

#include <span>
#include <vector>

#include "floorplan/floorplan.hpp"
#include "numerics/dense.hpp"
#include "thermal/backend.hpp"

namespace ptherm::core {

/// Surface point an influence row reports the rise at (a block centre in the
/// co-simulation use).
using InfluenceSample = thermal::SurfaceSample;

/// Cost counters from an influence build, for the perf trajectory. All
/// fields `long long`: the telemetry catalog (telemetry/counters.hpp) binds
/// each to a named registry counter and statically asserts completeness.
struct InfluenceBuildStats {
  long long columns = 0;        ///< unit-source solves performed
  long long cg_iterations = 0;  ///< total CG iterations (FDM backend only)
  long long modes = 0;          ///< cosine modes carried (spectral backend)
  long long fft_calls = 0;      ///< 1-D FFT invocations (spectral backend)
};

/// Projection of the backend cost counters onto the influence-build view,
/// routed through the telemetry registry: the backend counters contribute
/// under their catalog names and the influence view reads the same names
/// back, so the two structs share ONE name mapping and a new backend counter
/// cannot silently go missing from `influence_build_stats()`.
[[nodiscard]] InfluenceBuildStats influence_stats_from(const thermal::BackendCostStats& cost);

/// Square dense influence operator over flat row-major storage: the dense
/// realization of the thermal::InfluenceApply seam (the matrix-free spectral
/// realization lives behind SolverBackend::make_influence_apply).
class InfluenceOperator final : public thermal::InfluenceApply {
 public:
  InfluenceOperator() = default;
  explicit InfluenceOperator(numerics::Matrix r);

  [[nodiscard]] std::size_t size() const noexcept override { return r_.rows(); }

  /// R[i][j], bounds-checked.
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;

  /// Adds `resistance` [K/W] to every entry — a lumped package/heat-sink
  /// path couples every pair of blocks uniformly.
  void add_uniform(double resistance);

  /// rises = R * powers; both spans must have size() elements (throws
  /// ptherm::PreconditionError otherwise); allocation-free.
  void apply(std::span<const double> powers, std::span<double> rises) const override;
  [[nodiscard]] std::vector<double> apply(std::span<const double> powers) const;

  /// Multi-RHS apply over `count` scenario-major vectors: one
  /// Matrix::multiply_batch, streaming R once per row for the whole block.
  /// Per-vector results match apply() bitwise (see multiply_batch).
  void apply_batch(std::span<const double> powers, std::span<double> rises,
                   std::size_t count) const override;

  [[nodiscard]] std::string_view kind() const noexcept override { return "dense"; }

  [[nodiscard]] const numerics::Matrix& matrix() const noexcept { return r_; }

 private:
  numerics::Matrix r_;
};

/// Block centres of a floorplan — the sample points the co-simulation uses.
[[nodiscard]] std::vector<InfluenceSample> block_centre_samples(const floorplan::Floorplan& fp);

/// Batched analytic build: column j comes from a single-source image model
/// (only source j's images are evaluated). `sources` supplies geometry; the
/// powers are ignored (unit power per column).
[[nodiscard]] InfluenceOperator build_influence_analytic(
    const thermal::Die& die, std::vector<thermal::HeatSource> sources,
    std::span<const InfluenceSample> samples, const thermal::ImageOptions& opts = {});

/// Batched FDM build against a caller-owned solver (stencil assembled and
/// factorized once for all columns). With `warm_start`, column j's CG starts
/// from the previous column's field translated (edge-replicated) onto this
/// column's source position; pass false for the reference per-column
/// cold-start build. Throws
/// ptherm::PreconditionError naming the column, the failure mode (CG
/// breakdown versus iteration limit), and the residual if a column fails to
/// converge.
[[nodiscard]] InfluenceOperator build_influence_fdm(
    const thermal::FdmThermalSolver& solver, std::vector<thermal::HeatSource> sources,
    std::span<const InfluenceSample> samples, bool warm_start = true,
    InfluenceBuildStats* stats = nullptr);

/// Batched spectral build against a caller-owned solver: each column is one
/// analytic mode projection plus one mode-space multiply.
[[nodiscard]] InfluenceOperator build_influence_spectral(
    const thermal::SpectralThermalSolver& solver, std::vector<thermal::HeatSource> sources,
    std::span<const InfluenceSample> samples, InfluenceBuildStats* stats = nullptr);

}  // namespace ptherm::core
