// Thermal influence operator: the dense block-to-block coupling R[i][j] =
// rise at sample point i per watt injected in block j [K/W] that the
// concurrent electro-thermal fixed point iterates on. Both thermal backends
// are linear in injected power, so the operator captures them exactly; it is
// precomputed once and the Picard loop then costs one dense matvec per
// iteration (flat row-major storage, no pointer chasing).
//
// Construction is batched per column:
//  * Analytic: a single-source image model per column evaluates only that
//    column's mirror images — the per-sample sweep over every other source's
//    zero-power images the naive build pays is pure waste (superposition:
//    zero-power sources contribute exactly nothing).
//  * FDM: one FdmThermalSolver is reused for every column (one stencil
//    assembly + one IC(0) factorization), and each unit-source CG solve is
//    warm-started from the previous column's field translated onto the new
//    source position — adjacent blocks have near-identical fields up to
//    that lateral shift.
#pragma once

#include <span>
#include <vector>

#include "floorplan/floorplan.hpp"
#include "numerics/dense.hpp"
#include "thermal/fdm.hpp"
#include "thermal/images.hpp"

namespace ptherm::core {

/// Surface point an influence row reports the rise at (a block centre in the
/// co-simulation use).
struct InfluenceSample {
  double x = 0.0;
  double y = 0.0;
};

/// Cost counters from an influence build, for the perf trajectory.
struct InfluenceBuildStats {
  int columns = 0;                 ///< unit-source solves performed
  long long cg_iterations = 0;     ///< total CG iterations (FDM backend only)
};

/// Square dense influence operator over flat row-major storage.
class InfluenceOperator {
 public:
  InfluenceOperator() = default;
  explicit InfluenceOperator(numerics::Matrix r);

  [[nodiscard]] std::size_t size() const noexcept { return r_.rows(); }

  /// R[i][j], bounds-checked.
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;

  /// Adds `resistance` [K/W] to every entry — a lumped package/heat-sink
  /// path couples every pair of blocks uniformly.
  void add_uniform(double resistance);

  /// rises = R * powers (sizes must equal size()); allocation-free.
  void apply(std::span<const double> powers, std::span<double> rises) const;
  [[nodiscard]] std::vector<double> apply(std::span<const double> powers) const;

  [[nodiscard]] const numerics::Matrix& matrix() const noexcept { return r_; }

 private:
  numerics::Matrix r_;
};

/// Block centres of a floorplan — the sample points the co-simulation uses.
[[nodiscard]] std::vector<InfluenceSample> block_centre_samples(const floorplan::Floorplan& fp);

/// Batched analytic build: column j comes from a single-source image model
/// (only source j's images are evaluated). `sources` supplies geometry; the
/// powers are ignored (unit power per column).
[[nodiscard]] InfluenceOperator build_influence_analytic(
    const thermal::Die& die, std::vector<thermal::HeatSource> sources,
    std::span<const InfluenceSample> samples, const thermal::ImageOptions& opts = {});

/// Batched FDM build against a caller-owned solver (stencil assembled and
/// factorized once for all columns). With `warm_start`, column j's CG starts
/// from the previous column's field translated (edge-replicated) onto this
/// column's source position; pass false for the reference per-column
/// cold-start build. Throws
/// ptherm::PreconditionError naming the column, the failure mode (CG
/// breakdown versus iteration limit), and the residual if a column fails to
/// converge.
[[nodiscard]] InfluenceOperator build_influence_fdm(
    const thermal::FdmThermalSolver& solver, std::vector<thermal::HeatSource> sources,
    std::span<const InfluenceSample> samples, bool warm_start = true,
    InfluenceBuildStats* stats = nullptr);

}  // namespace ptherm::core
