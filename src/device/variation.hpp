// Process-variation layer for leakage statistics. Threshold-voltage
// variation is the dominant leakage spread mechanism in sub-100nm CMOS
// because the current is exponential in VT0: a Gaussian VT0 makes leakage
// lognormal, so the *mean* chip leaks noticeably more than the *nominal*
// chip — the classic exp(sigma^2/2) penalty. The paper evaluates nominal
// silicon; this layer is the variation-aware extension a sign-off user
// needs on top of it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "device/tech.hpp"

namespace ptherm::device {

/// Leakage multiplier implied by a VT0 offset at temperature `temp`:
/// exp(-dVT0 / (n VT)) — exact for any collapsed equivalent device, since
/// Eq. (13) carries VT0 only in the exponent. Free-function form shared by
/// VariationModel and the batched scenario engine's per-block adjustments.
[[nodiscard]] double leakage_multiplier(const Technology& tech, double delta_vt0,
                                        double temp) noexcept;

/// Gaussian threshold variation (per-gate, fully correlated within a gate —
/// the pessimistic-but-simple granularity).
struct VariationModel {
  double sigma_vt0 = 0.0;  ///< standard deviation of VT0 [V]

  /// Draws one VT0 offset [V] (Box-Muller on the deterministic Rng).
  [[nodiscard]] double sample_delta_vt0(Rng& rng) const;

  /// Draws `count` VT0 offsets for scenario `index` from its dedicated
  /// decorrelated stream Rng::stream(base_seed, index). The draws are bitwise
  /// identical whether the scenario is sampled alone or inside an arbitrarily
  /// large batch — adding, removing, or reordering other scenarios never
  /// perturbs them.
  [[nodiscard]] std::vector<double> sample_scenario_delta_vt0(std::size_t count,
                                                              std::uint64_t base_seed,
                                                              std::uint64_t index) const;

  /// Leakage multiplier implied by a VT0 offset at temperature `temp`:
  /// exp(-dVT0 / (n VT)) — exact for any collapsed equivalent device, since
  /// Eq. (13) carries VT0 only in the exponent.
  [[nodiscard]] double leakage_multiplier(const Technology& tech, double delta_vt0,
                                          double temp) const noexcept;

  /// Closed-form moments of the lognormal leakage multiplier:
  /// mean = exp(s^2/2), median = 1, with s = sigma_vt0 / (n VT).
  [[nodiscard]] double mean_multiplier(const Technology& tech, double temp) const noexcept;
  [[nodiscard]] double sigma_log(const Technology& tech, double temp) const noexcept;
};

}  // namespace ptherm::device
