#include "device/tech.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace ptherm::device {

Technology Technology::cmos012() {
  Technology t;
  t.name = "cmos012";
  // Defaults in the struct already describe this node; repeated here so the
  // factory stays correct if defaults ever drift.
  t.l_drawn = 0.12e-6;
  t.w_min = 0.16e-6;
  t.vdd = 1.2;
  t.vt0_n = 0.30;
  t.vt0_p = 0.32;
  t.gamma_lin = 0.18;
  t.sigma_dibl = 0.06;
  t.k_t = -0.8e-3;
  t.n_swing = 1.45;
  t.i0_n = 0.35e-6;
  t.i0_p = 0.14e-6;
  t.t_ref = 300.0;
  t.kp_n = 300e-6;
  t.kp_p = 120e-6;
  return t;
}

Technology Technology::cmos035() {
  Technology t;
  t.name = "cmos035";
  t.l_drawn = 0.35e-6;
  t.w_min = 0.5e-6;
  t.vdd = 3.3;
  t.vt0_n = 0.55;
  t.vt0_p = 0.60;
  t.gamma_lin = 0.25;
  t.sigma_dibl = 0.02;
  t.k_t = -1.0e-3;
  t.n_swing = 1.5;
  t.i0_n = 0.6e-6;
  t.i0_p = 0.25e-6;
  t.t_ref = 300.0;
  t.kp_n = 190e-6;
  t.kp_p = 70e-6;
  t.cox_area = 4.6e-3;
  t.t_substrate = 500e-6;
  return t;
}

Technology Technology::scaled_node(double feature_um) {
  PTHERM_REQUIRE(feature_um >= 0.01 && feature_um <= 2.0,
                 "scaled_node: feature size out of supported range [0.01, 2] um");
  Technology t;
  std::ostringstream name;
  name << "cmos" << feature_um << "um";
  t.name = name.str();
  const double f = feature_um;  // microns

  t.l_drawn = f * 1e-6;
  t.w_min = 1.4 * t.l_drawn;

  // Supply: follows the historical/ITRS trajectory, 5 V at 0.8 um down to
  // ~0.6 V at 25 nm, saturating rather than scaling to zero.
  t.vdd = std::clamp(5.0 * std::pow(f / 0.8, 0.55), 0.6, 5.0);

  // Threshold: scaled with VDD to keep gate overdrive (performance), which is
  // exactly the mechanism that makes leakage explode (paper §1). The slope
  // follows the aggressive low-VT trajectory behind Duarte's Fig. 1
  // projection, with a ~130 mV variation-limited floor.
  t.vt0_n = std::max(0.13, 0.24 * t.vdd - 0.02);
  t.vt0_p = t.vt0_n + 0.02;

  // DIBL worsens as channels shorten; body effect weakens slightly.
  t.sigma_dibl = std::clamp(0.02 + 0.012 * std::log(0.8 / f) / std::log(2.0), 0.02, 0.14);
  t.gamma_lin = std::clamp(0.25 - 0.02 * std::log(0.8 / f) / std::log(2.0), 0.10, 0.25);

  // Subthreshold swing degrades at very short channels (SCE).
  t.n_swing = std::clamp(1.35 + 0.07 * std::log(0.10 / f) / std::log(2.0), 1.35, 1.65);

  t.k_t = -0.8e-3;
  t.i0_n = 0.35e-6;
  t.i0_p = 0.14e-6;
  t.t_ref = 300.0;

  // Strong inversion / capacitance: oxide thins with the node.
  t.cox_area = 11e-3 * std::pow(0.12 / f, 0.7);
  t.kp_n = 300e-6 * std::pow(0.12 / f, 0.4);
  t.kp_p = t.kp_n * 0.4;
  return t;
}

Technology at_supply(const Technology& tech, double v) {
  Technology t = tech;
  t.vdd = v;
  const double dibl_shift = t.sigma_dibl * (tech.vdd - t.vdd);
  t.vt0_n += dibl_shift;
  t.vt0_p += dibl_shift;
  return t;
}

}  // namespace ptherm::device
