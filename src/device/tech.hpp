// Technology descriptors: every electrical and thermal parameter the paper's
// equations consume, plus factory presets for the two processes the paper
// evaluates (a 0.12 um logic process for the leakage results and a 0.35 um
// process for the self-heating measurements) and a parametric generator used
// by the Fig. 1 scaling roadmap.
#pragma once

#include <string>

namespace ptherm::device {

/// Channel type. All model equations are written for nMOS; pMOS is handled by
/// voltage mirroring at the call sites that need it.
enum class MosType { Nmos, Pmos };

/// One CMOS process node. Units are SI (volts, metres, amperes, kelvin).
struct Technology {
  std::string name;

  // --- geometry ---------------------------------------------------------
  double l_drawn = 0.12e-6;   ///< drawn/minimum channel length L [m]
  double w_min = 0.16e-6;     ///< minimum legal width [m]

  // --- supply and threshold (paper Eq. 2) --------------------------------
  double vdd = 1.2;           ///< nominal supply [V]
  double vt0_n = 0.30;        ///< nMOS zero-bias threshold at VDS=VDD, Tref [V]
  double vt0_p = 0.32;        ///< |pMOS| zero-bias threshold [V]
  double gamma_lin = 0.18;    ///< gamma': linearized body-effect coefficient [-]
  double sigma_dibl = 0.06;   ///< sigma: DIBL coefficient [V/V]
  double k_t = -0.8e-3;       ///< KT: dVTH/dT [V/K] (negative: VTH drops with T)

  // --- subthreshold conduction (paper Eq. 1) ------------------------------
  double n_swing = 1.45;      ///< n: subthreshold slope factor [-]
  double i0_n = 0.35e-6;      ///< I0 for nMOS [A] (per square, W/L multiplies it)
  double i0_p = 0.14e-6;      ///< I0 for pMOS [A]
  double t_ref = 300.0;       ///< Tref [K]

  // --- strong inversion (SPICE substrate only, not used by the compact
  //     leakage model) ------------------------------------------------------
  double kp_n = 300e-6;       ///< nMOS transconductance u*Cox [A/V^2]
  double kp_p = 120e-6;       ///< pMOS transconductance [A/V^2]
  double lambda = 0.08;       ///< channel-length modulation [1/V]

  // --- capacitances (dynamic power) ---------------------------------------
  double cox_area = 11e-3;    ///< gate oxide capacitance per area [F/m^2]
  double c_junction = 1.0e-9; ///< junction cap per drain width [F/m]

  // --- thermal ------------------------------------------------------------
  double k_si = 148.0;        ///< substrate thermal conductivity [W/(m K)]
  double t_substrate = 350e-6;///< substrate (die) thickness to the heat sink [m]
  double cv_si = 1.631e6;     ///< volumetric heat capacity [J/(m^3 K)]

  /// Zero-bias threshold for the requested channel type.
  [[nodiscard]] double vt0(MosType type) const noexcept {
    return type == MosType::Nmos ? vt0_n : vt0_p;
  }
  /// Subthreshold I0 for the requested channel type.
  [[nodiscard]] double i0(MosType type) const noexcept {
    return type == MosType::Nmos ? i0_n : i0_p;
  }
  /// Strong-inversion transconductance for the requested channel type.
  [[nodiscard]] double kp(MosType type) const noexcept {
    return type == MosType::Nmos ? kp_n : kp_p;
  }

  // --- factories ----------------------------------------------------------
  /// The 0.12 um process used for the paper's leakage validation (Figs 3, 8).
  static Technology cmos012();
  /// The 0.35 um process used for the self-heating measurements (Figs 9, 10).
  static Technology cmos035();
  /// Parametric node for the scaling study; `feature_um` in microns
  /// (e.g. 0.8 ... 0.025). See scaling/roadmap.cpp for the scaling rules.
  static Technology scaled_node(double feature_um);
};

/// `tech` rewritten to supply voltage `v` with the DIBL-consistent threshold
/// shift. The leakage model's vt0 is characterized at VDS = the technology's
/// nominal VDD (threshold_voltage subtracts sigma * (vds - tech.vdd)), so
/// rewriting vdd alone would silently move the characterization point with
/// it and erase the DIBL benefit of supply scaling. Shifting vt0 by
/// sigma * (v_nominal - v) keeps the PHYSICAL device fixed: at a lower
/// supply the OFF transistor sees less drain-induced barrier lowering, so
/// its threshold is effectively higher and leakage falls exponentially.
/// The ONE supply-rewrite rule — the RTM actuator's per-level technologies
/// and the batched scenario engine's V/f corner levels both come from here,
/// so a corner screened in batch is the same device an RTM run throttles to.
[[nodiscard]] Technology at_supply(const Technology& tech, double v);

}  // namespace ptherm::device
