// MOSFET models.
//
// Two layers:
//  * `subthreshold_current` / `threshold_voltage` implement the paper's
//    Eqs. (1) and (2) verbatim — these are the physics the compact leakage
//    model (src/leakage) is derived from, and the exact solvers solve the
//    very same equations numerically so that Fig. 8's comparison isolates
//    the quality of the *collapse*, not of the device model.
//  * `MosModel::ids` adds a strong-inversion square-law region, blended C1-
//    continuously in log-current space, for the SPICE substrate where ON
//    transistors must conduct realistically. The blend window sits well away
//    from the static operating points of CMOS gates (devices are either hard
//    OFF or hard ON), so the blend never influences a reported result.
#pragma once

#include "device/tech.hpp"

namespace ptherm::device {

/// Source-referenced bias point of one transistor (nMOS conventions: all
/// voltages positive in normal operation; for pMOS pass mirrored values).
struct BiasPoint {
  double vgs = 0.0;
  double vds = 0.0;
  double vsb = 0.0;
  double temp = 300.0;  ///< device temperature [K]
};

/// Paper Eq. (2): VTH = VT0 + gamma'*VSB + KT*(T - Tref) - sigma*(VDS - VDD).
/// The DIBL term vanishes at VDS = VDD (VT0 is defined at full drain bias).
[[nodiscard]] double threshold_voltage(const Technology& tech, MosType type,
                                       const BiasPoint& bias) noexcept;

/// Paper Eq. (1):
///   I = I0 * (W/L) * (T/Tref)^2 * exp((VGS - VTH)/(n VT)) * (1 - exp(-VDS/VT)).
/// Positive for VDS > 0. Width/length in metres.
[[nodiscard]] double subthreshold_current(const Technology& tech, MosType type, double width,
                                          double length, const BiasPoint& bias) noexcept;

/// OFF current of a single device with VGS = 0, VSB = 0, VDS = VDD at
/// temperature `temp` — the N = 1 case of the paper's Eq. (13).
[[nodiscard]] double off_current(const Technology& tech, MosType type, double width,
                                 double length, double temp) noexcept;

/// Full-region model for the circuit solver. Owns a copy of the technology
/// so instances never dangle (callers routinely pass factory temporaries).
class MosModel {
 public:
  MosModel(Technology tech, MosType type, double width, double length);

  /// Drain current for *terminal* voltages (not source-referenced); handles
  /// pMOS mirroring and source/drain swap so it is valid in all quadrants.
  /// Returns conventional current into the drain terminal.
  [[nodiscard]] double ids(double vg, double vd, double vs, double vb, double temp) const;

  /// Instantaneous dissipated power |ids * (vd - vs)| [W] at the given
  /// terminal voltages — what the electro-thermal coupling injects into the
  /// thermal solver per device. Always non-negative.
  [[nodiscard]] double power(double vg, double vd, double vs, double vb, double temp) const;

  [[nodiscard]] MosType type() const noexcept { return type_; }
  [[nodiscard]] double width() const noexcept { return width_; }
  [[nodiscard]] double length() const noexcept { return length_; }
  [[nodiscard]] const Technology& technology() const noexcept { return tech_; }

 private:
  /// Source-referenced nMOS-convention current (vds >= 0 guaranteed by caller).
  [[nodiscard]] double ids_normalized(const BiasPoint& bias) const;

  Technology tech_;
  MosType type_;
  double width_;
  double length_;
};

}  // namespace ptherm::device
