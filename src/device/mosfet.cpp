#include "device/mosfet.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace ptherm::device {

double threshold_voltage(const Technology& tech, MosType type, const BiasPoint& bias) noexcept {
  return tech.vt0(type) + tech.gamma_lin * bias.vsb + tech.k_t * (bias.temp - tech.t_ref) -
         tech.sigma_dibl * (bias.vds - tech.vdd);
}

double subthreshold_current(const Technology& tech, MosType type, double width, double length,
                            const BiasPoint& bias) noexcept {
  const double vt = thermal_voltage(bias.temp);
  const double vth = threshold_voltage(tech, type, bias);
  const double ratio = bias.temp / tech.t_ref;
  const double exponent = (bias.vgs - vth) / (tech.n_swing * vt);
  const double drain_factor = 1.0 - std::exp(-bias.vds / vt);
  return tech.i0(type) * (width / length) * ratio * ratio * std::exp(exponent) * drain_factor;
}

double off_current(const Technology& tech, MosType type, double width, double length,
                   double temp) noexcept {
  BiasPoint bias;
  bias.vgs = 0.0;
  bias.vds = tech.vdd;
  bias.vsb = 0.0;
  bias.temp = temp;
  return subthreshold_current(tech, type, width, length, bias);
}

MosModel::MosModel(Technology tech, MosType type, double width, double length)
    : tech_(std::move(tech)), type_(type), width_(width), length_(length) {
  PTHERM_REQUIRE(width > 0.0 && length > 0.0, "MosModel: non-positive geometry");
}

namespace {

/// Strong-inversion square law with channel-length modulation. `veff` must be
/// positive; `vds` non-negative.
double square_law(const Technology& tech, MosType type, double w_over_l, double veff,
                  double vds) {
  const double kp = tech.kp(type);
  const double clm = 1.0 + tech.lambda * vds;
  if (vds < veff) {
    return kp * w_over_l * (veff * vds - 0.5 * vds * vds) * clm;  // triode
  }
  return 0.5 * kp * w_over_l * veff * veff * clm;  // saturation
}

}  // namespace

double MosModel::ids_normalized(const BiasPoint& bias) const {
  const Technology& tech = tech_;
  const double vt = thermal_voltage(bias.temp);
  const double vth = threshold_voltage(tech, type_, bias);
  const double veff = bias.vgs - vth;
  const double w_over_l = width_ / length_;

  // Blend window in gate overdrive: pure Eq.(1) below `lo`, pure square law
  // above `hi`, C1 log-space Hermite blend in between. Static CMOS operating
  // points sit far outside [lo, hi].
  const double lo = 1.0 * tech.n_swing * vt;
  const double hi = lo + 0.16;

  const double i_sub = subthreshold_current(tech, type_, width_, length_, bias);
  if (veff <= lo) return i_sub;

  const double i_strong = square_law(tech, type_, w_over_l, veff, bias.vds);
  if (bias.vds <= 0.0 || i_strong <= 0.0 || i_sub <= 0.0) return i_sub;
  if (veff >= hi) return i_strong;

  const double t = (veff - lo) / (hi - lo);
  const double s = t * t * (3.0 - 2.0 * t);  // smoothstep
  return std::exp((1.0 - s) * std::log(i_sub) + s * std::log(i_strong));
}

double MosModel::ids(double vg, double vd, double vs, double vb, double temp) const {
  // A pMOS is an nMOS (with pMOS parameter magnitudes, which ids_normalized
  // selects through type_) with every terminal voltage and the current
  // negated.
  double sign = 1.0;
  if (type_ == MosType::Pmos) {
    vg = -vg;
    vd = -vd;
    vs = -vs;
    vb = -vb;
    sign = -1.0;
  }
  if (vd >= vs) {
    return sign * ids_normalized({vg - vs, vd - vs, vs - vb, temp});
  }
  return -sign * ids_normalized({vg - vd, vs - vd, vd - vb, temp});
}

double MosModel::power(double vg, double vd, double vs, double vb, double temp) const {
  return std::abs(ids(vg, vd, vs, vb, temp) * (vd - vs));
}

}  // namespace ptherm::device
