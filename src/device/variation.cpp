#include "device/variation.hpp"

#include <cmath>
#include <numbers>

#include "common/constants.hpp"

namespace ptherm::device {

double leakage_multiplier(const Technology& tech, double delta_vt0, double temp) noexcept {
  const double nvt = tech.n_swing * thermal_voltage(temp);
  return std::exp(-delta_vt0 / nvt);
}

double VariationModel::sample_delta_vt0(Rng& rng) const {
  // Box-Muller; one draw per call keeps the stream reproducible and simple.
  const double u1 = std::max(rng.uniform(), 1e-300);
  const double u2 = rng.uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return sigma_vt0 * z;
}

std::vector<double> VariationModel::sample_scenario_delta_vt0(std::size_t count,
                                                              std::uint64_t base_seed,
                                                              std::uint64_t index) const {
  Rng rng = Rng::stream(base_seed, index);
  std::vector<double> offsets(count);
  for (double& dvt0 : offsets) dvt0 = sample_delta_vt0(rng);
  return offsets;
}

double VariationModel::leakage_multiplier(const Technology& tech, double delta_vt0,
                                          double temp) const noexcept {
  return device::leakage_multiplier(tech, delta_vt0, temp);
}

double VariationModel::sigma_log(const Technology& tech, double temp) const noexcept {
  return sigma_vt0 / (tech.n_swing * thermal_voltage(temp));
}

double VariationModel::mean_multiplier(const Technology& tech, double temp) const noexcept {
  const double s = sigma_log(tech, temp);
  return std::exp(0.5 * s * s);
}

}  // namespace ptherm::device
