// Scenario: hotspot analysis of a die with concentrated high-activity
// regions — the workload the paper's introduction motivates ("circuit
// density and complexity may lead to spatial temperature gradients within
// the IC, thus impacting power differently at different IC regions").
//
// The example builds a hotspot power map, runs the concurrent solve on the
// spectral Green's-function backend (the fastest influence build), and
// reports the per-block temperature/leakage spread plus an ASCII heat map
// rendered through the same backend's DCT-synthesized surface map.
#include <algorithm>
#include <iostream>

#include "core/api.hpp"

int main() {
  using namespace ptherm;

  const auto tech = device::Technology::cmos012();
  thermal::Die die;
  die.width = 2e-3;
  die.height = 2e-3;
  die.thickness = 350e-6;
  die.k_si = kSiliconThermalConductivity;
  die.t_sink = celsius(50.0);

  // 8 W total, 60% of it concentrated in 4 small hotspots.
  Rng rng(1234);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 8.0;
  cfg.gates_per_mm2 = 1.5e5;
  const auto fp = floorplan::make_hotspot_map(tech, die, 4, 0.6, cfg, rng);

  core::CosimOptions opts;
  opts.backend = core::ThermalBackend::Spectral;
  core::ElectroThermalSolver solver(tech, fp, opts);
  const auto result = solver.solve();
  if (!result.converged) {
    std::cout << "solver did not converge (runaway: " << result.runaway << ")\n";
    return 1;
  }

  Table table("Hotspot analysis - per block");
  table.set_columns({"block", "P_dyn_W", "T_C", "P_leak_mW", "leak_density_mW_mm2"});
  table.set_precision(4);
  double t_min = 1e300, t_max = 0.0;
  for (std::size_t i = 0; i < fp.blocks().size(); ++i) {
    const auto& b = fp.blocks()[i];
    const auto& s = result.blocks[i];
    t_min = std::min(t_min, s.temperature);
    t_max = std::max(t_max, s.temperature);
    table.add_row({b.name, s.p_dynamic, to_celsius(s.temperature), s.p_leakage * 1e3,
                   s.p_leakage * 1e3 / (b.rect.area() * 1e6)});
  }
  table.print(std::cout);

  std::cout << "\nTemperature spread across the die: " << t_max - t_min << " K\n";
  std::cout << "Total leakage at converged temperatures: " << result.total_leakage * 1e3
            << " mW (" << 100.0 * result.total_leakage / result.total_power()
            << "% of total power)\n\n";

  // ASCII heat map of the converged field, rendered by the same backend the
  // solve used (64 x 32 is a power-of-two grid: the DCT-synthesis path).
  std::vector<thermal::HeatSource> sources = fp.heat_sources(tech);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    sources[i].power = result.blocks[i].p_total();
  }
  thermal::SurfaceMap map;
  map.nx = 64;
  map.ny = 32;
  map.values = solver.backend().surface_rise_map(sources, map.nx, map.ny);
  for (double& v : map.values) v += die.t_sink;
  const auto cost = solver.backend().cost_stats();
  std::cout << "Converged thermal map (" << to_celsius(map.min_value()) << " C .. "
            << to_celsius(map.max_value()) << " C; backend " << solver.backend().name()
            << ", " << cost.modes << " modes, " << cost.fft_calls << " FFTs):\n"
            << thermal::render_ascii(map);
  if (thermal::write_pgm(map, "hotspot_map.pgm")) {
    std::cout << "(written to hotspot_map.pgm)\n";
  }
  return 0;
}
