// Device-level thermal runaway at the SPICE substrate: ONE wide NMOS biased
// just below threshold on a small, poorly-cooled die, solved with the
// electro-thermal DC coupling (spice/electrothermal.hpp). Subthreshold
// current roughly doubles every ~15 K, so the loop gain R * dP/dT crosses 1
// somewhere between a 300 K and a 325 K heat sink: the cold sink converges
// to a self-consistent operating point a few tens of kelvin up, the hot sink
// diverges — and the solver FLAGS the divergence, returning the real runaway
// iterate instead of clamping it into a fake steady state (the same policy
// the block-level cosim pins).
//
// Build & run:  ./examples/runaway_circuit
#include <cstdio>

#include "device/mosfet.hpp"
#include "spice/circuit.hpp"
#include "spice/electrothermal.hpp"
#include "thermal/backend.hpp"

int main() {
  using namespace ptherm;
  using device::MosModel;
  using device::MosType;

  const auto tech = device::Technology::cmos012();

  // 100 um x 100 um die, 300 um to the sink, conductivity knocked down to
  // mimic a badly heat-sunk test structure: ~mW of subthreshold power buys
  // tens of kelvin of self-heating.
  const auto make_die = [](double t_sink) {
    thermal::Die d;
    d.width = 100e-6;
    d.height = 100e-6;
    d.thickness = 300e-6;
    d.k_si = 4.0;
    d.t_sink = t_sink;
    return d;
  };

  spice::Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto gate = ckt.node("gate");
  ckt.add_vsource("VDD", vdd, spice::Circuit::ground(), tech.vdd);
  ckt.add_vsource("VG", gate, spice::Circuit::ground(), 0.30);
  ckt.add_mosfet("MHOT", vdd, gate, spice::Circuit::ground(), spice::Circuit::ground(),
                 MosModel(tech, MosType::Nmos, 200e-6, tech.l_drawn));

  const std::vector<spice::DeviceFootprint> footprints = {
      {"MHOT", 50e-6, 50e-6, 10e-6, 10e-6}};

  std::printf("%-8s %-10s %-10s %-8s %-8s %s\n", "sink[K]", "Tdev[K]", "P[mW]", "outer",
              "status", "note");
  for (const double t_sink : {300.0, 310.0, 320.0, 325.0}) {
    thermal::AnalyticImagesBackend backend(make_die(t_sink));
    spice::ElectroThermalDcOptions opts;
    opts.t_sink = t_sink;
    opts.dc.temp = t_sink;
    const auto sol = spice::solve_electrothermal_dc(ckt, backend, footprints, opts);
    const char* status = sol.runaway ? "RUNAWAY" : (sol.converged ? "ok" : "no-conv");
    const char* note = sol.runaway
                           ? "divergent iterate reported as-is (flagged, not clamped)"
                           : "self-consistent T = sink + R*P(T)";
    std::printf("%-8.1f %-10.1f %-10.3f %-8d %-8s %s\n", t_sink, sol.max_temperature,
                1e3 * sol.device_powers[0], sol.outer_iterations, status, note);
  }
  return 0;
}
