// Trace anatomy: one traced run across the three solver stacks — a
// 4096-block manycore steady cosim (spectral backend, matrix-free influence),
// a closed-loop RTM epoch run (threshold throttling over the transient
// cosim), and a SPICE DC operating point with its recovery ladder — exported
// as ONE Chrome trace-event JSON file. Load it in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing: the ts/dur containment
// renders the span nesting (cosim/solve over spectral/apply_influence,
// rtm/run over rtm/epoch over transient/epoch, spice/solve_dc over
// spice/gmin_ladder), which is the fastest way to see where the milliseconds
// of a co-simulation actually go.
//
// Build & run:  ./examples/trace_anatomy [output.json]
//               (default trace_anatomy_trace.json in the working directory)
#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>

#include "core/api.hpp"
#include "telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace ptherm;

  if (argc > 2) {
    std::cerr << "usage: trace_anatomy [output.json]\n";
    return 2;
  }
  const std::string out_path = argc == 2 ? argv[1] : "trace_anatomy_trace.json";

  // One sink observes everything below; uninstalled before export.
  telemetry::Tracer tracer;
  telemetry::set_tracer(&tracer);
  const auto tech = device::Technology::cmos012();

  // ---- 1. Steady cosim at manycore scale: 32x32 tiles x 4 blocks = 4096
  // blocks. The spectral backend applies the influence operator matrix-free
  // in mode space, so this stays a few hundred milliseconds — watch the
  // spectral/apply_influence spans repeat under cosim/solve, one batch per
  // Picard iteration.
  {
    thermal::Die die;
    die.width = 16e-3;
    die.height = 16e-3;
    die.thickness = 350e-6;
    die.k_si = kSiliconThermalConductivity;
    die.t_sink = celsius(45.0);
    Rng rng(314);
    floorplan::GeneratorConfig cfg;
    cfg.total_dynamic_power = 120.0;
    cfg.gates_per_mm2 = 50e3;
    const auto fp = floorplan::make_manycore(tech, die, 32, 32, cfg, rng);

    core::CosimOptions opts;
    opts.backend = core::ThermalBackend::Spectral;
    opts.trace.convergence = true;
    core::ElectroThermalSolver solver(tech, fp, opts);
    const auto r = solver.solve();
    std::cout << "cosim: " << r.blocks.size() << " blocks, "
              << (r.converged ? "converged" : "DID NOT CONVERGE") << " in " << r.iterations
              << " Picard iterations (residual " << r.picard_residuals.front() << " -> "
              << r.picard_residuals.back() << " K)\n";
    if (!r.converged) return 1;
  }

  // ---- 2. RTM epoch loop: threshold throttling holding a sustained
  // overload under its cap. Each rtm/epoch span wraps one sense -> decide ->
  // actuate -> re-leakage cycle; the transient/epoch spans inside are the
  // plant's own power-update hook.
  {
    thermal::Die die;
    die.width = 1e-3;
    die.height = 1e-3;
    die.thickness = 350e-6;
    die.k_si = kSiliconThermalConductivity;
    die.t_sink = celsius(55.0);
    Rng rng(99);
    floorplan::GeneratorConfig cfg;
    cfg.total_dynamic_power = 18.0;
    cfg.gates_per_mm2 = 3e5;
    const auto fp = floorplan::make_uniform_grid(tech, die, 2, 2, cfg, rng);

    rtm::BurstPattern pat;
    pat.period = 8e-3;
    pat.duty = 1.0;
    pat.high = 1.0;
    const auto trace = rtm::make_burst_trace(4, 40, 1e-3, pat);

    rtm::RtmOptions opts;
    opts.backend = core::ThermalBackend::Spectral;
    opts.spectral.modes_x = 32;
    opts.spectral.modes_y = 32;
    opts.dt = 1e-4;
    opts.steps_per_epoch = 2;
    opts.temperature_cap = celsius(95.0);
    opts.trace.convergence = true;

    rtm::ThresholdPolicy policy;
    rtm::Actuator actuator(tech, fp, rtm::VfLadder::uniform(tech.vdd, 2e9, 4, 0.8, 0.45));
    const auto r = rtm::run_rtm(tech, fp, trace, policy, actuator, opts);
    std::cout << "rtm: " << r.metrics.epochs << " epochs / " << r.metrics.steps
              << " steps, peak " << to_celsius(r.metrics.peak_temperature) << " C, "
              << r.metrics.interventions << " interventions, throughput "
              << r.metrics.throughput_fraction << "\n";
  }

  // ---- 3. SPICE DC operating point: a CMOS inverter at mid-rail input,
  // the worst case for the gmin ladder (both devices half-on).
  {
    spice::Circuit ckt;
    const auto vdd = ckt.node("vdd");
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add_vsource("VDD", vdd, spice::Circuit::ground(), tech.vdd);
    ckt.add_vsource("VIN", in, spice::Circuit::ground(), 0.5 * tech.vdd);
    ckt.add_mosfet("MN", out, in, spice::Circuit::ground(), spice::Circuit::ground(),
                   device::MosModel(tech, device::MosType::Nmos, 0.32e-6, tech.l_drawn));
    ckt.add_mosfet("MP", out, in, vdd, vdd,
                   device::MosModel(tech, device::MosType::Pmos, 0.8e-6, tech.l_drawn));
    spice::DcOptions opts;
    opts.trace.convergence = true;
    const auto sol = spice::solve_dc(ckt, opts);
    std::cout << "spice: " << sol.report.summary() << "\n";
    if (!sol.converged) return 1;
  }

  telemetry::set_tracer(nullptr);
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "trace_anatomy: cannot open " << out_path << " for writing\n";
    return 1;
  }
  telemetry::write_chrome_trace(out, tracer.events());
  std::cout << "wrote " << tracer.event_count() << " spans ("
            << tracer.dropped_events() << " dropped) to " << out_path
            << " -- load it in Perfetto or chrome://tracing\n";
  return 0;
}
