// Shared strict selector parsing for the examples. CI runs each example
// once per backend AND asserts the failure modes (unknown selector, trailing
// arguments), so the contract lives in exactly one place: parse succeeds
// only for `prog` or `prog <backend>`; anything else prints usage and the
// caller exits with the returned status. Two variants: the transient
// examples accept the transient-capable pair (fdm|spectral), the steady
// examples all three backends.
#pragma once

#include <iostream>
#include <optional>
#include <string>

#include "core/cosim.hpp"

namespace ptherm::examples {

inline constexpr int kUsageExitStatus = 2;

/// Parses argv into a transient backend choice. Returns the backend
/// (default Spectral with no argument) or std::nullopt after printing a
/// usage message — the caller should then `return kUsageExitStatus`.
inline std::optional<core::ThermalBackend> parse_transient_backend(
    int argc, char** argv, core::ThermalBackend fallback = core::ThermalBackend::Spectral) {
  const auto usage = [&] {
    std::cerr << "usage: " << argv[0] << " [fdm|spectral]\n"
              << "  fdm       backward-Euler FDM plant (numerical reference)\n"
              << "  spectral  exact exponential-integrator plant\n";
  };
  if (argc > 2) {
    usage();
    return std::nullopt;
  }
  if (argc == 2) {
    const std::string choice = argv[1];
    if (choice == "fdm") return core::ThermalBackend::Fdm;
    if (choice == "spectral") return core::ThermalBackend::Spectral;
    std::cerr << "unknown transient backend '" << choice << "' (want fdm or spectral)\n";
    usage();
    return std::nullopt;
  }
  return fallback;
}

/// Parses argv into a steady backend choice (all three backends legal).
/// Same strict contract: default on no argument, usage + nullopt on unknown
/// or trailing arguments. FDM grid sizing stays with the caller — smoke
/// examples want coarse grids, studies want converged ones.
inline std::optional<core::ThermalBackend> parse_steady_backend(
    int argc, char** argv, core::ThermalBackend fallback = core::ThermalBackend::Spectral) {
  const auto usage = [&] {
    std::cerr << "usage: " << argv[0] << " [analytic|fdm|spectral]\n"
              << "  analytic  closed-form mirror-image influence\n"
              << "  fdm       finite-difference reference\n"
              << "  spectral  Green's-function mode space (matrix-free capable)\n";
  };
  if (argc > 2) {
    usage();
    return std::nullopt;
  }
  if (argc == 2) {
    const std::string choice = argv[1];
    if (choice == "analytic") return core::ThermalBackend::Analytic;
    if (choice == "fdm") return core::ThermalBackend::Fdm;
    if (choice == "spectral") return core::ThermalBackend::Spectral;
    std::cerr << "unknown backend '" << choice << "' (want analytic, fdm, or spectral)\n";
    usage();
    return std::nullopt;
  }
  return fallback;
}

}  // namespace ptherm::examples
