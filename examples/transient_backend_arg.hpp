// Shared strict selector parsing for the transient examples. CI runs each
// example once per transient-capable backend AND asserts the failure modes
// (unknown selector, trailing arguments), so the contract lives in exactly
// one place: parse succeeds only for `prog`, `prog fdm`, or `prog spectral`;
// anything else prints usage and the caller exits with the returned status.
#pragma once

#include <iostream>
#include <optional>
#include <string>

#include "core/cosim.hpp"

namespace ptherm::examples {

inline constexpr int kUsageExitStatus = 2;

/// Parses argv into a transient backend choice. Returns the backend
/// (default Spectral with no argument) or std::nullopt after printing a
/// usage message — the caller should then `return kUsageExitStatus`.
inline std::optional<core::ThermalBackend> parse_transient_backend(
    int argc, char** argv, core::ThermalBackend fallback = core::ThermalBackend::Spectral) {
  const auto usage = [&] {
    std::cerr << "usage: " << argv[0] << " [fdm|spectral]\n"
              << "  fdm       backward-Euler FDM plant (numerical reference)\n"
              << "  spectral  exact exponential-integrator plant\n";
  };
  if (argc > 2) {
    usage();
    return std::nullopt;
  }
  if (argc == 2) {
    const std::string choice = argv[1];
    if (choice == "fdm") return core::ThermalBackend::Fdm;
    if (choice == "spectral") return core::ThermalBackend::Spectral;
    std::cerr << "unknown transient backend '" << choice << "' (want fdm or spectral)\n";
    usage();
    return std::nullopt;
  }
  return fallback;
}

}  // namespace ptherm::examples
