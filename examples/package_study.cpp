// Scenario: the die in its package. The same 3x3 floorplan is solved twice —
// once as the classic bare die over an ideal heat sink, once on a full
// die / TIM / copper-spreader stack whose bottom is closed by a two-stage
// Cauer package network (case + heatsink). The transient co-simulation then
// shows what the textbook constant-sink assumption hides: the case
// temperature is a STATE, charging on the package time constants long after
// the on-die gradients have settled, and every block (and its leakage) rides
// that rise.
//
// Build & run:  ./examples/package_study [fdm|spectral]
#include <cstddef>
#include <iostream>
#include <string>

#include "core/api.hpp"
#include "transient_backend_arg.hpp"

int main(int argc, char** argv) {
  using namespace ptherm;

  // Strict selector parsing shared with the other transient examples: CI
  // runs this study once per transient-capable backend and asserts the
  // failure modes.
  const auto backend = examples::parse_transient_backend(argc, argv);
  if (!backend) return examples::kUsageExitStatus;
  const std::string plant = *backend == core::ThermalBackend::Fdm ? "fdm" : "spectral";

  const auto tech = device::Technology::cmos012();
  thermal::Die die;
  die.width = 1e-3;
  die.height = 1e-3;
  die.thickness = 350e-6;
  die.k_si = kSiliconThermalConductivity;
  die.t_sink = celsius(45.0);

  Rng rng(31);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 6.0;
  cfg.gates_per_mm2 = 1e5;
  const auto fp = floorplan::make_uniform_grid(tech, die, 3, 3, cfg, rng);

  // The stack: die silicon, thermal interface material, copper spreader,
  // then the compact package network (fast case stage, slow heatsink stage).
  const thermal::StackLayer layers[] = {
      {"die", 350e-6, die.k_si, 1.631e6},
      {"tim", 25e-6, 4.0, 2.2e6},
      {"spreader", 500e-6, 390.0, 3.4e6},
  };
  thermal::BoundarySpec pkg;
  pkg.kind = thermal::BoundaryKind::RcNetwork;
  pkg.rc.emplace(std::vector<thermal::ThermalRc>{{0.4, 8e-3}, {1.2, 0.15}});
  const thermal::DieStack stack({layers[0], layers[1], layers[2]}, pkg);

  Table sheet("Die stack (" + plant + " plant)");
  sheet.set_columns({"layer", "thickness_um", "k_W_per_mK", "cv_MJ_per_m3K"});
  sheet.set_precision(3);
  for (const auto& l : stack.layers()) {
    sheet.add_row({l.name, l.thickness * 1e6, l.k, l.cv * 1e-6});
  }
  sheet.print(std::cout);
  std::cout << "boundary: " << pkg.rc->stage_count() << "-stage RC network, "
            << pkg.rc->total_resistance() << " K/W case-to-ambient\n\n";

  core::TransientCosimOptions opts;
  opts.backend = *backend;
  opts.dt = 2e-4;
  opts.t_stop = 80e-3;
  opts.record_every = 50;  // a row every 10 ms
  opts.spectral.modes_x = 32;
  opts.spectral.modes_y = 32;
  opts.fdm.nx = 16;
  opts.fdm.ny = 16;
  opts.fdm.nz = 16;

  const auto activity = [](std::size_t, double) { return 1.0; };

  // Bare die: the legacy constant-sink problem.
  const auto bare = core::solve_transient_cosim(tech, fp, activity, opts);
  // Packaged: layered conduction + dynamic case temperature.
  core::TransientCosimOptions packaged_opts = opts;
  packaged_opts.stack = stack;
  const auto packaged = core::solve_transient_cosim(tech, fp, activity, packaged_opts);

  Table table("Power step on " + plant + ": bare die vs packaged stack");
  table.set_columns({"t_ms", "bare_peak_C", "pkg_peak_C", "case_rise_K", "pkg_leak_W"});
  table.set_precision(4);
  for (std::size_t k = 0; k < packaged.times.size(); ++k) {
    double bare_peak = 0.0, pkg_peak = 0.0;
    for (double t : bare.block_temps[k]) bare_peak = std::max(bare_peak, t);
    for (double t : packaged.block_temps[k]) pkg_peak = std::max(pkg_peak, t);
    table.add_row({packaged.times[k] * 1e3, to_celsius(bare_peak), to_celsius(pkg_peak),
                   packaged.case_rise[k], packaged.leakage_power[k]});
  }
  table.print(std::cout);

  std::cout << "\nReading: the bare die settles within ~1 ms (its own time constant);\n"
               "the packaged die keeps warming for the whole window because the case\n"
               "node charges on the package network's slower time constants. The extra\n"
               "rise is uniform across blocks — the boundary, not on-die spreading —\n"
               "and the leakage column shows the electro-thermal cost of ignoring it.\n";

  // Guard rails for CI: the packaged run must actually exhibit the dynamic
  // boundary (nonzero, monotone case charge; hotter than the bare die), and
  // the bare run must record an all-zero case trace.
  bool ok = true;
  for (double c : bare.case_rise) ok = ok && c == 0.0;
  for (std::size_t k = 1; k < packaged.case_rise.size(); ++k) {
    ok = ok && packaged.case_rise[k] >= packaged.case_rise[k - 1] - 1e-12;
  }
  ok = ok && packaged.case_rise.back() > 0.5;
  ok = ok && packaged.peak_temperature() > bare.peak_temperature();
  if (!ok) {
    std::cerr << "package_study: dynamic-boundary invariants violated\n";
    return 1;
  }
  return 0;
}
