// Scenario: closed-loop runtime thermal management. A migrating hot task
// rotates across a 3x3 compute array while three governors try to hold the
// die under a temperature cap: none (the uncontrolled baseline), reactive
// threshold throttling with hysteresis, and a PID frequency governor. The
// study prints the control trade every DVFS paper haggles over — peak
// temperature and cap violations versus delivered throughput and energy —
// with the leakage-temperature feedback live inside the loop (throttling
// lowers VDD, which lowers leakage, which cools the die further than the
// dynamic-power cut alone).
//
// Build & run:  ./examples/dvfs_policy_study [fdm|spectral]
#include <iostream>
#include <string>

#include "core/api.hpp"
#include "transient_backend_arg.hpp"

int main(int argc, char** argv) {
  using namespace ptherm;

  // Strict selector parsing, shared with thermal_cycling (CI runs the
  // example once per transient-capable backend): an unknown selector or
  // trailing arguments fail loudly instead of silently studying the wrong
  // plant.
  const auto backend = examples::parse_transient_backend(argc, argv);
  if (!backend) return examples::kUsageExitStatus;
  rtm::RtmOptions opts;
  opts.backend = *backend;

  const auto tech = device::Technology::cmos012();
  thermal::Die die;
  die.width = 1e-3;
  die.height = 1e-3;
  die.thickness = 350e-6;
  die.k_si = kSiliconThermalConductivity;
  die.t_sink = celsius(55.0);

  // 3x3 compute array, 16 W of nominal dynamic power.
  Rng rng(777);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 16.0;
  cfg.gates_per_mm2 = 3e5;
  const auto fp = floorplan::make_uniform_grid(tech, die, 3, 3, cfg, rng);

  // Workload: a hot task (1.6x activity) migrating across the array every
  // 4 ms, light background everywhere else.
  rtm::MigrationPattern migration;
  migration.dwell = 4e-3;
  migration.hot = 1.6;
  migration.cold = 0.35;
  const std::size_t samples = 200;      // 1 ms per sample -> 200 ms of trace
  const auto trace = rtm::make_migration_trace(fp.blocks().size(), samples, 1e-3, migration);

  // Five operating points from nominal down to 0.75 VDD / 0.4 f.
  const auto ladder = rtm::VfLadder::uniform(tech.vdd, 2e9, 5, 0.75, 0.4);

  opts.dt = 1e-4;
  // The die's dominant thermal time constant is ~0.55 ms (4 t^2 cv / (pi^2
  // k)); the control period must undercut it or reactive policies are
  // always a spike behind. 0.2 ms gives ~3 decisions per time constant.
  opts.steps_per_epoch = 2;
  opts.temperature_cap = celsius(95.0);
  opts.spectral.modes_x = 32;
  opts.spectral.modes_y = 32;
  opts.fdm.nx = 16;
  opts.fdm.ny = 16;
  opts.fdm.nz = 8;

  rtm::NoopPolicy noop;
  rtm::ThresholdPolicyOptions thr_opts;
  thr_opts.trigger_margin = 6.0;   // throttle from 6 K below the cap
  thr_opts.release_margin = 14.0;  // unthrottle only 14 K below it
  rtm::ThresholdPolicy threshold(thr_opts);
  rtm::PidPolicyOptions pid_opts;
  pid_opts.setpoint_margin = 8.0;
  rtm::PidPolicy pid(pid_opts);
  rtm::Policy* policies[] = {&noop, &threshold, &pid};

  Table table(std::string("DVFS policy study: migrating hotspot, cap 95 C (") +
              (opts.backend == core::ThermalBackend::Fdm ? "fdm" : "spectral") + " plant)");
  table.set_columns({"policy", "peak_C", "over_cap_ms", "throughput_pct", "energy_mJ",
                     "interventions"});
  table.set_precision(4);

  for (rtm::Policy* policy : policies) {
    rtm::Actuator actuator(tech, fp, ladder);
    const auto r = rtm::run_rtm(tech, fp, trace, *policy, actuator, opts);
    const auto& m = r.metrics;
    table.add_row({std::string(policy->name()), to_celsius(m.peak_temperature),
                   m.time_over_cap * 1e3, m.throughput_fraction * 100.0, m.energy * 1e3,
                   static_cast<double>(m.interventions)});
  }
  table.print(std::cout);

  std::cout << "\nReading: 'noop' shows what the workload does to the die unmanaged;\n"
               "'threshold' trades throughput for a hard stop below the cap;\n"
               "'pid' holds the die near its setpoint with finer-grained level moves.\n"
               "Leakage is re-evaluated at each epoch's actual VDD and temperature,\n"
               "so the throttled runs also spend less static power.\n";
  return 0;
}
