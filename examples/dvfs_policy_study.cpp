// Scenario: closed-loop runtime thermal management. A migrating hot task
// rotates across a 3x3 compute array while three governors try to hold the
// die under a temperature cap: none (the uncontrolled baseline), reactive
// threshold throttling with hysteresis, and a PID frequency governor. The
// study prints the control trade every DVFS paper haggles over — peak
// temperature and cap violations versus delivered throughput and energy —
// with the leakage-temperature feedback live inside the loop (throttling
// lowers VDD, which lowers leakage, which cools the die further than the
// dynamic-power cut alone).
//
// Build & run:  ./examples/dvfs_policy_study [fdm|spectral]
#include <iostream>
#include <string>

#include "core/api.hpp"
#include "transient_backend_arg.hpp"

int main(int argc, char** argv) {
  using namespace ptherm;

  // Strict selector parsing, shared with thermal_cycling (CI runs the
  // example once per transient-capable backend): an unknown selector or
  // trailing arguments fail loudly instead of silently studying the wrong
  // plant.
  const auto backend = examples::parse_transient_backend(argc, argv);
  if (!backend) return examples::kUsageExitStatus;
  rtm::RtmOptions opts;
  opts.backend = *backend;

  const auto tech = device::Technology::cmos012();
  thermal::Die die;
  die.width = 1e-3;
  die.height = 1e-3;
  die.thickness = 350e-6;
  die.k_si = kSiliconThermalConductivity;
  die.t_sink = celsius(55.0);

  // 3x3 compute array, 16 W of nominal dynamic power.
  Rng rng(777);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 16.0;
  cfg.gates_per_mm2 = 3e5;
  const auto fp = floorplan::make_uniform_grid(tech, die, 3, 3, cfg, rng);

  // Workload: a hot task (1.6x activity) migrating across the array every
  // 4 ms, light background everywhere else.
  rtm::MigrationPattern migration;
  migration.dwell = 4e-3;
  migration.hot = 1.6;
  migration.cold = 0.35;
  const std::size_t samples = 200;      // 1 ms per sample -> 200 ms of trace
  const auto trace = rtm::make_migration_trace(fp.blocks().size(), samples, 1e-3, migration);

  // Five operating points from nominal down to 0.75 VDD / 0.4 f.
  const auto ladder = rtm::VfLadder::uniform(tech.vdd, 2e9, 5, 0.75, 0.4);

  opts.dt = 1e-4;
  // The die's dominant thermal time constant is ~0.55 ms (4 t^2 cv / (pi^2
  // k)); the control period must undercut it or reactive policies are
  // always a spike behind. 0.2 ms gives ~3 decisions per time constant.
  opts.steps_per_epoch = 2;
  opts.temperature_cap = celsius(95.0);
  opts.spectral.modes_x = 32;
  opts.spectral.modes_y = 32;
  opts.fdm.nx = 16;
  opts.fdm.ny = 16;
  opts.fdm.nz = 8;

  rtm::NoopPolicy noop;
  rtm::ThresholdPolicyOptions thr_opts;
  thr_opts.trigger_margin = 6.0;   // throttle from 6 K below the cap
  thr_opts.release_margin = 14.0;  // unthrottle only 14 K below it
  rtm::ThresholdPolicy threshold(thr_opts);
  rtm::PidPolicyOptions pid_opts;
  pid_opts.setpoint_margin = 8.0;
  rtm::PidPolicy pid(pid_opts);
  rtm::Policy* policies[] = {&noop, &threshold, &pid};

  Table table(std::string("DVFS policy study: migrating hotspot, cap 95 C (") +
              (opts.backend == core::ThermalBackend::Fdm ? "fdm" : "spectral") + " plant)");
  table.set_columns({"policy", "peak_C", "over_cap_ms", "throughput_pct", "energy_mJ",
                     "interventions"});
  table.set_precision(4);

  for (rtm::Policy* policy : policies) {
    rtm::Actuator actuator(tech, fp, ladder);
    const auto r = rtm::run_rtm(tech, fp, trace, *policy, actuator, opts);
    const auto& m = r.metrics;
    table.add_row({std::string(policy->name()), to_celsius(m.peak_temperature),
                   m.time_over_cap * 1e3, m.throughput_fraction * 100.0, m.energy * 1e3,
                   static_cast<double>(m.interventions)});
  }
  table.print(std::cout);

  std::cout << "\nReading: 'noop' shows what the workload does to the die unmanaged;\n"
               "'threshold' trades throughput for a hard stop below the cap;\n"
               "'pid' holds the die near its setpoint with finer-grained level moves.\n"
               "Leakage is re-evaluated at each epoch's actual VDD and temperature,\n"
               "so the throttled runs also spend less static power.\n";

  // ---------------------------------------------------------------------
  // Scenario 2: a sustained load behind a package. The die stack's RC
  // boundary makes the heatsink a dynamic plant state, and the cap sits
  // ABOVE the steady bare-die temperature of this workload: with a constant
  // sink nothing would ever violate it. The violation that does appear is
  // driven entirely by the case node charging on the package time constants
  // (~75 ms — two orders slower than the 0.55 ms die), which is exactly the
  // regime where reactive policies earn their keep: they must shed power
  // against a rise that keeps coming long after the die itself has settled.
  // The workload is steady (no migration) so the die-scale spikes of
  // scenario 1 don't mask the boundary effect under study.
  rtm::BurstPattern sustained;
  sustained.period = 8e-3;
  sustained.duty = 1.0;
  sustained.high = 0.8;
  const auto pkg_trace =
      rtm::make_burst_trace(fp.blocks().size(), samples, 1e-3, sustained);

  rtm::RtmOptions pkg_opts = opts;
  pkg_opts.temperature_cap = celsius(102.0);
  thermal::BoundarySpec boundary;
  boundary.kind = thermal::BoundaryKind::RcNetwork;
  boundary.rc.emplace(std::vector<thermal::ThermalRc>{{0.4, 5e-3}, {1.1, 0.05}});
  pkg_opts.stack = thermal::DieStack({{"die", die.thickness, die.k_si, 1.631e6}}, boundary);

  Table pkg_table(std::string("Package-RC scenario: cap 102 C binds on the sink time "
                              "constant (") +
                  (opts.backend == core::ThermalBackend::Fdm ? "fdm" : "spectral") +
                  " plant)");
  pkg_table.set_columns({"policy", "peak_C", "over_cap_ms", "throughput_pct", "energy_mJ",
                         "interventions"});
  pkg_table.set_precision(4);

  // The package scenario gets wider guard bands than scenario 1: the case
  // node ramps for tens of milliseconds after a throttling decision, so a
  // margin sized for the 0.55 ms die alone lets the slow boundary coast
  // straight through the cap before the policy's cut can bite.
  rtm::ThresholdPolicyOptions pkg_thr_opts;
  pkg_thr_opts.trigger_margin = 9.0;
  pkg_thr_opts.release_margin = 17.0;
  rtm::ThresholdPolicy pkg_threshold(pkg_thr_opts);
  rtm::PidPolicyOptions pkg_pid_opts;
  pkg_pid_opts.setpoint_margin = 12.0;
  rtm::PidPolicy pkg_pid(pkg_pid_opts);
  rtm::Policy* pkg_policies[] = {&noop, &pkg_threshold, &pkg_pid};

  double noop_over_cap = 0.0;
  double regulated_peak = 0.0;
  for (rtm::Policy* policy : pkg_policies) {
    rtm::Actuator actuator(tech, fp, ladder);
    const auto r = rtm::run_rtm(tech, fp, pkg_trace, *policy, actuator, pkg_opts);
    const auto& m = r.metrics;
    if (policy == &noop) {
      noop_over_cap = m.time_over_cap;
    } else {
      regulated_peak = std::max(regulated_peak, m.peak_temperature);
    }
    pkg_table.add_row({std::string(policy->name()), to_celsius(m.peak_temperature),
                       m.time_over_cap * 1e3, m.throughput_fraction * 100.0, m.energy * 1e3,
                       static_cast<double>(m.interventions)});
  }
  pkg_table.print(std::cout);

  std::cout << "\nReading: unmanaged, the slowly charging case pushes the die over a cap\n"
               "the bare die could never reach; the regulated policies feel the case\n"
               "rise through their sensors and trade throughput to hold under it.\n";

  // CI guard rails: the scenario only demonstrates its point if the cap
  // genuinely binds for noop AND the regulated policies genuinely hold.
  bool ok = true;
  if (noop_over_cap <= 0.0) {
    std::cerr << "package-RC scenario: noop never exceeded the cap — the sink time\n"
                 "constant no longer binds; retune the package network\n";
    ok = false;
  }
  if (regulated_peak > pkg_opts.temperature_cap) {
    std::cerr << "package-RC scenario: a regulated policy exceeded the cap ("
              << to_celsius(regulated_peak) << " C)\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
