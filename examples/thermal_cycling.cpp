// Scenario: thermal cycling under a bursty workload — the transient
// counterpart of the concurrent solve. A compute cluster alternates between
// full activity and idle; the example traces block temperatures and shows
// how leakage "breathes" with the thermal state (idle power is not constant
// because the die is still hot from the previous burst).
//
// Build & run:  ./examples/thermal_cycling [fdm|spectral]
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

#include "core/api.hpp"
#include "transient_backend_arg.hpp"

int main(int argc, char** argv) {
  using namespace ptherm;

  // Optional transient-backend selector (CI runs the example once per
  // transient-capable backend): fdm is the backward-Euler reference,
  // spectral the exact exponential-integrator path. Parsing is strict and
  // shared with dvfs_policy_study — an unknown selector OR trailing
  // arguments exit nonzero with a usage message, so a typo in a CI matrix
  // can never silently study the default backend instead of the requested
  // one. This example's historical default stays Fdm.
  const auto backend =
      examples::parse_transient_backend(argc, argv, core::ThermalBackend::Fdm);
  if (!backend) return examples::kUsageExitStatus;
  core::TransientCosimOptions opts;
  opts.backend = *backend;

  const auto tech = device::Technology::cmos012();
  thermal::Die die;
  die.width = 1e-3;
  die.height = 1e-3;
  die.thickness = 350e-6;
  die.k_si = kSiliconThermalConductivity;
  die.t_sink = celsius(55.0);

  // 2x2 floorplan: blocks 0/1 are the bursty cluster, 2/3 are steady logic.
  Rng rng(321);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 6.0;
  cfg.gates_per_mm2 = 3e5;
  const auto fp = floorplan::make_uniform_grid(tech, die, 2, 2, cfg, rng);

  // 4 ms bursts with 4 ms idle gaps on the cluster; steady elsewhere.
  core::ActivityProfile profile = [](std::size_t block, double t) {
    if (block >= 2) return 1.0;
    const double phase = t - 8e-3 * std::floor(t / 8e-3);
    return phase < 4e-3 ? 1.6 : 0.05;
  };

  opts.fdm.nx = 24;
  opts.fdm.ny = 24;
  opts.fdm.nz = 12;
  opts.dt = 1e-4;
  opts.t_stop = 32e-3;
  opts.record_every = 5;
  const auto r = core::solve_transient_cosim(tech, fp, profile, opts);

  Table table("Thermal cycling trace (cluster = blocks 0/1)");
  table.set_columns({"t_ms", "T_cluster_C", "T_steady_C", "P_dyn_W", "P_leak_mW"});
  table.set_precision(5);
  for (std::size_t k = 0; k < r.times.size(); ++k) {
    table.add_row({r.times[k] * 1e3, to_celsius(r.block_temps[k][0]),
                   to_celsius(r.block_temps[k][2]), r.dynamic_power[k],
                   r.leakage_power[k] * 1e3});
  }
  table.print(std::cout);

  // Quantify the leakage "breathing": leakage at the end of a burst vs at
  // the end of the following idle gap.
  double leak_hot = 0.0, leak_cool = 0.0;
  for (std::size_t k = 0; k < r.times.size(); ++k) {
    const double phase = r.times[k] - 8e-3 * std::floor(r.times[k] / 8e-3);
    if (std::abs(phase - 3.9e-3) < 2.5e-4) leak_hot = r.leakage_power[k];
    if (std::abs(phase - 7.9e-3) < 2.5e-4) leak_cool = r.leakage_power[k];
  }
  std::cout << "\nPeak die temperature over the run: " << to_celsius(r.peak_temperature())
            << " C\n";
  if (leak_hot > 0.0 && leak_cool > 0.0) {
    std::cout << "Leakage at burst end " << leak_hot * 1e3 << " mW vs idle end "
              << leak_cool * 1e3 << " mW: the same circuit leaks "
              << leak_hot / leak_cool << "x more when hot.\n";
  }
  std::cout << "(A temperature-unaware estimator would report a single number.)\n";
  return 0;
}
