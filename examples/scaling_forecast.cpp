// Scenario: technology-scaling power forecast (the Fig. 1 use case as a
// planning tool). For each roadmap node, the example reports dynamic and
// static power at the designer's operating temperature, the static share,
// and — the paper's point — how much the static estimate moves when the
// operating temperature itself is solved concurrently instead of assumed.
#include <iostream>

#include "core/api.hpp"

int main() {
  using namespace ptherm;

  Table table("Power forecast across the roadmap (die-level, watts)");
  table.set_columns({"node_um", "vdd", "P_dyn", "P_stat_85C", "P_stat_self_consistent",
                     "T_self_C", "underestimate_%"});
  table.set_precision(4);

  for (const auto& node : scaling::default_roadmap()) {
    const auto p85 = scaling::node_power(node, celsius(85.0));

    // Self-consistent junction temperature for a uniformly heated die on a
    // 0.6 K/W package: T = T_amb + R * (P_dyn + P_stat(T)), a scalar version
    // of the paper's concurrent loop.
    const double r_pkg = 0.6;
    const double t_amb = celsius(85.0);
    double t = t_amb;
    bool runaway = false;
    for (int it = 0; it < 200; ++it) {
      const auto p = scaling::node_power(node, t);
      const double t_next = t_amb + r_pkg * (p.dynamic + p.stat);
      if (t_next > celsius(250.0)) {
        // Exponential leakage vs linear cooling: no fixed point exists at
        // this package resistance — genuine leakage-thermal runaway.
        runaway = true;
        break;
      }
      if (std::abs(t_next - t) < 1e-4) {
        t = t_next;
        break;
      }
      t += 0.5 * (t_next - t);
    }
    if (runaway) {
      table.add_row({node.feature_um, node.tech.vdd, p85.dynamic, p85.stat,
                     std::string("RUNAWAY"), std::string(">250"), std::string("-")});
      continue;
    }
    const auto p_self = scaling::node_power(node, t);
    const double under = (p_self.stat - p85.stat) / std::max(p_self.stat, 1e-12) * 100.0;
    table.add_row({node.feature_um, node.tech.vdd, p85.dynamic, p85.stat, p_self.stat,
                   to_celsius(t), under});
  }
  table.print(std::cout);

  std::cout << "\nReading: at the sub-100nm nodes the fixed-temperature estimate misses a\n"
               "growing slice of the true static power because the die heats itself -\n"
               "the error the paper's concurrent model exists to remove.\n";
  return 0;
}
