// Scenario: standby-leakage sign-off of a gate-level netlist — the
// "standby leakage of transistor stacks" use-case of the paper's §2 and of
// baseline [8]. Reports per-cell leakage across vectors, the best standby
// input vector, Monte-Carlo statistics for a random block, and the
// temperature derating table a sign-off flow would quote.
#include <iostream>

#include "core/api.hpp"

int main() {
  using namespace ptherm;

  const auto tech = device::Technology::cmos012();
  const netlist::CellLibrary library(tech);

  // --- Per-cell leakage characterisation ---------------------------------
  Table cells("Cell leakage characterisation at 25 C / 110 C (nA)");
  cells.set_columns({"cell", "min_25C", "mean_25C", "max_25C", "mean_110C",
                     "best_standby_vector"});
  cells.set_precision(4);
  for (const auto& name : library.names()) {
    const auto cell = library.find(name);
    const auto cold = leakage::gate_leakage_summary(tech, *cell, celsius(25.0));
    const auto hot = leakage::gate_leakage_summary(tech, *cell, celsius(110.0));
    std::string vec;
    for (bool b : cold.min_vector) vec += b ? '1' : '0';
    cells.add_row({name, cold.min_i_off / nA, cold.mean_i_off / nA, cold.max_i_off / nA,
                   hot.mean_i_off / nA, vec});
  }
  cells.print(std::cout);

  // --- Block-level Monte Carlo -------------------------------------------
  Rng rng(42);
  const auto nl = netlist::make_random_netlist(library, 5000, rng);
  std::cout << "\nRandom block: " << nl.size() << " cells, " << nl.transistor_count()
            << " transistors\n";
  Rng mc(43);
  for (double t_c : {25.0, 70.0, 110.0}) {
    const auto stats = nl.monte_carlo_leakage(tech, celsius(t_c), 30, mc);
    std::cout << "  T = " << t_c << " C:  mean " << stats.mean / uA << " uA,  spread ["
              << stats.min / uA << ", " << stats.max / uA << "] uA over random states\n";
  }

  // --- Reverse body bias knob ---------------------------------------------
  std::cout << "\nReverse body bias at 110 C (standby leakage knob, Eq. 13):\n";
  const double base = nl.total_off_current(tech, celsius(110.0), 0.0);
  for (double vb : {0.0, -0.2, -0.4}) {
    const double i = nl.total_off_current(tech, celsius(110.0), vb);
    std::cout << "  VB = " << vb << " V:  " << i / uA << " uA  ("
              << 100.0 * i / base << "% of zero-bias)\n";
  }

  // --- Standby vector optimization ------------------------------------------
  {
    netlist::Netlist standby = nl;
    const double before = standby.total_off_current(tech, celsius(110.0));
    netlist::optimize_standby_vectors(standby, tech, celsius(110.0));
    const double after = standby.total_off_current(tech, celsius(110.0));
    std::cout << "\nStandby-vector optimization at 110 C: " << before / uA << " uA -> "
              << after / uA << " uA  (" << 100.0 * (1.0 - after / before)
              << "% saved by parking every gate at its best vector)\n";
  }

  // --- Temperature derating table ------------------------------------------
  Table derate("Leakage derating vs temperature (x over 25 C)");
  derate.set_columns({"T_C", "leakage_multiplier"});
  derate.set_precision(4);
  const double i25 = nl.total_off_current(tech, celsius(25.0));
  for (double t_c = 25.0; t_c <= 145.0 + 1e-9; t_c += 20.0) {
    derate.add_row({t_c, nl.total_off_current(tech, celsius(t_c)) / i25});
  }
  std::cout << "\n";
  derate.print(std::cout);
  std::cout << "\nThe multiplier doubles every ~20 C - the reason the paper couples the\n"
               "leakage model to the thermal model instead of assuming one temperature.\n";
  return 0;
}
