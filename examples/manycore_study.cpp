// Manycore cosim study: a McPAT-style tiled manycore floorplan (core + L2
// slice + directory + NoC router per tile) through the concurrent
// power-thermal solve on a selectable backend. On the spectral backend the
// influence operator is applied matrix-free in mode space (InfluenceMode::
// Auto), so the same study scales to thousands of blocks; analytic and FDM
// run the dense path on a small grid — the CI smoke runs all three.
//
// Build & run:  ./examples/manycore_study [analytic|fdm|spectral]
//               (default spectral; unknown or trailing arguments fail)
#include <cstddef>
#include <iostream>
#include <string>

#include "core/api.hpp"
#include "transient_backend_arg.hpp"

int main(int argc, char** argv) {
  using namespace ptherm;

  // Strict selector: default Spectral, reject unknown and trailing
  // arguments (a typo must not silently study the wrong backend).
  const auto backend = examples::parse_steady_backend(argc, argv);
  if (!backend) return examples::kUsageExitStatus;
  core::CosimOptions opts;
  opts.backend = *backend;
  if (opts.backend == core::ThermalBackend::Fdm) {
    opts.fdm.nx = 24;
    opts.fdm.ny = 24;
    opts.fdm.nz = 12;
  }

  thermal::Die die;
  die.width = 4e-3;
  die.height = 4e-3;
  die.thickness = 350e-6;
  die.k_si = kSiliconThermalConductivity;
  die.t_sink = celsius(45.0);

  // A 4x4-tile manycore (64 blocks): big enough that the per-tile power mix
  // shows, small enough that the FDM dense build stays a smoke test.
  Rng rng(314);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 24.0;
  cfg.gates_per_mm2 = 50e3;
  const auto tech = device::Technology::cmos012();
  const auto fp = floorplan::make_manycore(tech, die, 4, 4, cfg, rng);

  core::ElectroThermalSolver solver(tech, fp, opts);
  const auto result = solver.solve();
  std::cout << "Manycore cosim (" << solver.backend().name() << " backend, "
            << solver.influence_apply().kind() << " influence): "
            << (result.converged ? "converged" : "DID NOT CONVERGE") << " in "
            << result.iterations << " iterations over " << result.blocks.size()
            << " blocks\n";

  // Hottest instance of each component class: the tile anatomy in degrees.
  struct Peak {
    const char* prefix;
    double temp = 0.0;
    std::string name;
  };
  Peak peaks[] = {{"core_", 0.0, {}}, {"l2_", 0.0, {}}, {"dir_", 0.0, {}}, {"router_", 0.0, {}}};
  for (std::size_t i = 0; i < fp.blocks().size(); ++i) {
    const auto& b = fp.blocks()[i];
    for (auto& p : peaks) {
      if (b.name.rfind(p.prefix, 0) == 0 && result.blocks[i].temperature > p.temp) {
        p.temp = result.blocks[i].temperature;
        p.name = b.name;
      }
    }
  }
  for (const auto& p : peaks) {
    std::cout << "  hottest " << p.prefix << "block: " << p.name << " at "
              << to_celsius(p.temp) << " C\n";
  }
  std::cout << "  dynamic " << result.total_dynamic << " W, leakage " << result.total_leakage
            << " W, hottest block " << to_celsius(result.max_temperature) << " C\n";
  return result.converged ? 0 : 1;
}
