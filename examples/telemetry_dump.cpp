// Metrics-registry demo and bench-tooling helper. Default run: solve a small
// floorplan twice (dense and matrix-free influence), contribute both cost
// stat sets into one registry, and dump the merged snapshot as JSONL — the
// exact stream bench/run_bench.sh consumes. With --guarded, print the bare
// names of the guarded solver-effort counters (one per line) and exit: this
// is how the bench harness embeds the counter catalog into BENCH_<label>.json
// so compare_bench.py guards exactly what the C++ catalog declares, with no
// hand-maintained Python list.
//
// Build & run:  ./examples/telemetry_dump [--guarded]
#include <iostream>
#include <string_view>

#include "core/api.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/registry.hpp"

int main(int argc, char** argv) {
  using namespace ptherm;

  if (argc > 2 || (argc == 2 && std::string_view(argv[1]) != "--guarded")) {
    std::cerr << "usage: telemetry_dump [--guarded]\n";
    return 2;
  }
  if (argc == 2) {
    for (const auto& name : telemetry::guarded_counter_names()) std::cout << name << "\n";
    return 0;
  }

  const auto tech = device::Technology::cmos012();
  thermal::Die die;
  die.width = 1e-3;
  die.height = 1e-3;
  die.thickness = 350e-6;
  die.k_si = kSiliconThermalConductivity;
  die.t_sink = celsius(45.0);
  Rng rng(21);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 2.0;
  cfg.gates_per_mm2 = 50e3;
  const auto fp = floorplan::make_uniform_grid(tech, die, 3, 3, cfg, rng);

  telemetry::Registry reg;
  for (const auto mode : {core::InfluenceMode::Dense, core::InfluenceMode::MatrixFree}) {
    core::CosimOptions opts;
    opts.backend = core::ThermalBackend::Spectral;
    opts.influence = mode;
    core::ElectroThermalSolver solver(tech, fp, opts);
    const auto r = solver.solve();
    if (!r.converged) return 1;
    // The unified merge: each solve's counters contribute into the one
    // registry; reading a struct back out (backend_cost_from) is the
    // field-complete sum — no hand-copied field lists anywhere.
    telemetry::contribute(reg, solver.backend().cost_stats());
    reg.add("cosim/picard_iterations", r.iterations);
    reg.set_gauge("cosim/max_temperature_k", r.max_temperature);
    reg.observe("cosim/residual_k", r.max_delta_last);
  }

  telemetry::write_jsonl(std::cout, reg.snapshot());
  return 0;
}
