// Quickstart: the three things ptherm does, in thirty lines each.
//  1. Static (leakage) power of a CMOS gate per input vector (paper §2).
//  2. The thermal profile of a block on a die (paper §3).
//  3. The concurrent solve coupling the two (the paper's headline), on a
//     selectable thermal backend.
//
// Build & run:  ./examples/quickstart [analytic|fdm|spectral]
#include <iostream>
#include <string>

#include "core/api.hpp"

int main(int argc, char** argv) {
  using namespace ptherm;

  // Optional backend selector for part 3 (CI runs the example once per
  // backend so a dispatch regression fails the pipeline, not just a bench).
  core::CosimOptions cosim_opts;
  if (argc > 1) {
    const std::string choice = argv[1];
    if (choice == "analytic") {
      cosim_opts.backend = core::ThermalBackend::Analytic;
    } else if (choice == "fdm") {
      cosim_opts.backend = core::ThermalBackend::Fdm;
      cosim_opts.fdm.nx = 24;
      cosim_opts.fdm.ny = 24;
      cosim_opts.fdm.nz = 12;
    } else if (choice == "spectral") {
      cosim_opts.backend = core::ThermalBackend::Spectral;
    } else {
      std::cerr << "unknown backend '" << choice << "' (want analytic, fdm, or spectral)\n";
      return 2;
    }
  }

  // ---------------------------------------------------------------- 1 ----
  // Leakage of a NAND2 gate in a 0.12 um process, per input vector, at 85 C.
  const auto tech = device::Technology::cmos012();
  const netlist::CellLibrary library(tech);
  const auto nand2 = library.find("nand2");

  std::cout << "NAND2 static current at 85 C, by input vector:\n";
  for (unsigned v = 0; v < 4; ++v) {
    const auto inputs = leakage::vector_from_index(v, 2);
    const auto r = leakage::gate_static(tech, *nand2, inputs, celsius(85.0));
    std::cout << "  a=" << inputs[0] << " b=" << inputs[1] << "  I_off = " << r.i_off / nA
              << " nA   (output " << (r.output_high ? "high" : "low") << ")\n";
  }
  const auto summary = leakage::gate_leakage_summary(tech, *nand2, celsius(85.0));
  std::cout << "  best/worst vector ratio: " << summary.max_i_off / summary.min_i_off
            << "  (the stack effect, Eqs. 3-13)\n\n";

  // ---------------------------------------------------------------- 2 ----
  // A 0.2 mm x 0.2 mm block dissipating 0.5 W in the centre of a 1 mm die:
  // closed-form temperature anywhere on the surface.
  thermal::Die die;
  die.width = 1e-3;
  die.height = 1e-3;
  die.thickness = 350e-6;
  die.k_si = kSiliconThermalConductivity;
  die.t_sink = celsius(45.0);
  const thermal::HeatSource block{0.5e-3, 0.5e-3, 0.2e-3, 0.2e-3, 0.5};
  const thermal::ChipThermalModel chip(die, {block});
  std::cout << "Block centre temperature: " << to_celsius(chip.temperature(0.5e-3, 0.5e-3))
            << " C;  die corner: " << to_celsius(chip.temperature(0.05e-3, 0.05e-3))
            << " C (sink " << to_celsius(die.t_sink) << " C)\n\n";

  // ---------------------------------------------------------------- 3 ----
  // Concurrent power-thermal solve of a synthetic 3x3 floorplan: leakage is
  // evaluated at each block's own converged temperature, not at the sink.
  Rng rng(7);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 4.0;
  cfg.gates_per_mm2 = 1e5;
  const auto fp = floorplan::make_uniform_grid(tech, die, 3, 3, cfg, rng);

  core::ElectroThermalSolver solver(tech, fp, cosim_opts);
  const auto result = solver.solve();
  std::cout << "Concurrent solve (" << solver.backend().name() << " backend): "
            << (result.converged ? "converged" : "DID NOT CONVERGE") << " in "
            << result.iterations << " iterations\n";
  std::cout << "  hottest block: " << to_celsius(result.max_temperature) << " C\n";
  std::cout << "  dynamic power: " << result.total_dynamic << " W, leakage power: "
            << result.total_leakage << " W\n";

  double cold_leak = 0.0;
  for (const auto& b : fp.blocks()) cold_leak += b.leakage_power(tech, die.t_sink);
  std::cout << "  leakage if (wrongly) evaluated at the sink temperature: " << cold_leak
            << " W  -> the concurrent solve matters.\n";
  return 0;
}
