// Scenario: leakage-thermal runaway study. Because leakage grows
// exponentially with temperature while the heat path is linear, there is a
// critical power/density beyond which the electro-thermal fixed point stops
// existing. This example sweeps the dynamic-power budget of a fixed
// floorplan until the concurrent solver reports runaway, and prints the
// stability margin (the spectral condition R * dP/dT < 1 in scalar form).
#include <iostream>

#include "core/api.hpp"

int main() {
  using namespace ptherm;

  const auto tech = device::Technology::cmos012();
  thermal::Die die;
  die.width = 1e-3;
  die.height = 1e-3;
  die.thickness = 350e-6;
  die.k_si = kSiliconThermalConductivity;
  die.t_sink = celsius(85.0);  // hot environment: worst case for runaway

  Table table("Runaway sweep: dynamic budget vs converged state");
  table.set_columns({"P_dyn_W", "status", "T_max_C", "P_leak_W", "leak_share_%",
                     "loop_gain"});
  table.set_precision(4);

  double p_runaway = -1.0;
  for (double p_dyn = 2.0; p_dyn <= 26.0 + 1e-9; p_dyn += 2.0) {
    Rng rng(11);  // same floorplan geometry each time
    floorplan::GeneratorConfig cfg;
    cfg.total_dynamic_power = p_dyn;
    // Pathologically leaky logic (think: every gate low-VT) — the point of
    // the study is to find where the exponential feedback wins.
    cfg.gates_per_mm2 = 1.2e8;
    const auto fp = floorplan::make_uniform_grid(tech, die, 3, 3, cfg, rng);

    core::CosimOptions opts;
    opts.runaway_rise_limit = 300.0;
    core::ElectroThermalSolver solver(tech, fp, opts);
    const auto r = solver.solve();

    // Scalar loop-gain estimate at the converged (or last) state: the
    // self-influence of the hottest block times dP_leak/dT there.
    std::size_t hot = 0;
    for (std::size_t i = 0; i < r.blocks.size(); ++i) {
      if (r.blocks[i].temperature > r.blocks[hot].temperature) hot = i;
    }
    const double t_hot = r.blocks[hot].temperature;
    const double dp_dt = (solver.block_leakage_power(hot, t_hot + 0.5) -
                          solver.block_leakage_power(hot, t_hot - 0.5));
    const double gain = solver.influence_matrix().at(hot, hot) * dp_dt;

    table.add_row({p_dyn,
                   std::string(r.runaway ? "RUNAWAY" : (r.converged ? "ok" : "no-conv")),
                   to_celsius(r.max_temperature), r.total_leakage,
                   100.0 * r.total_leakage / std::max(r.total_power(), 1e-12), gain});
    if (r.runaway && p_runaway < 0.0) p_runaway = p_dyn;
  }
  table.print(std::cout);

  if (p_runaway > 0.0) {
    std::cout << "\nThermal runaway sets in near " << p_runaway
              << " W dynamic budget on this floorplan.\n";
  } else {
    std::cout << "\nNo runaway within the sweep range.\n";
  }
  std::cout << "The loop gain column is the scalar stability margin: the fixed point\n"
               "diverges when the hottest block's self-heating times dP_leak/dT\n"
               "exceeds one - watch it approach 1.0 as the budget grows.\n";
  return 0;
}
