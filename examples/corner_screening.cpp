// V/f corner screening through the batched scenario engine: every supply x
// frequency operating point of a manycore plan solved concurrently
// (power-thermal fixed point each) against ONE shared geometry precompute.
// The screen answers the sign-off question "which corners are thermally
// safe?" — a corner passes when its solve converges (no leakage-thermal
// runaway) and its hottest block stays under the junction limit. Dynamic
// power scales as (V/V0)^2 (f/f0) through the power model; leakage sees the
// DIBL-consistent supply rewrite (device::at_supply), so low-V corners leak
// exponentially less — the asymmetry the screen exists to expose.
//
// Build & run:  ./examples/corner_screening [analytic|fdm|spectral]
//               (default spectral; unknown or trailing arguments fail)
#include <cstddef>
#include <cstdio>
#include <iostream>

#include "core/api.hpp"
#include "core/scenario_batch.hpp"
#include "floorplan/generators.hpp"
#include "transient_backend_arg.hpp"

int main(int argc, char** argv) {
  using namespace ptherm;

  const auto backend = examples::parse_steady_backend(argc, argv);
  if (!backend) return examples::kUsageExitStatus;
  core::CosimOptions opts;
  opts.backend = *backend;
  if (opts.backend == core::ThermalBackend::Fdm) {
    opts.fdm.nx = 24;
    opts.fdm.ny = 24;
    opts.fdm.nz = 12;
  }

  thermal::Die die;
  die.width = 4e-3;
  die.height = 4e-3;
  die.thickness = 350e-6;
  die.k_si = kSiliconThermalConductivity;
  die.t_sink = celsius(45.0);

  Rng rng(314);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 24.0;
  cfg.gates_per_mm2 = 50e3;
  const auto tech = device::Technology::cmos012();
  const auto fp = floorplan::make_manycore(tech, die, 3, 3, cfg, rng);

  const double t_limit = celsius(110.0);
  const double v_fracs[] = {0.8, 0.9, 1.0, 1.1};
  const double f_scales[] = {0.5, 0.75, 1.0};

  core::ScenarioBatch batch(tech, fp, opts);
  for (const double vf : v_fracs) {
    for (const double fs : f_scales) batch.add_vf_corner(tech.vdd * vf, fs);
  }
  const auto results = batch.solve_all();

  std::cout << "Corner screening (" << batch.backend().name() << " backend, "
            << (batch.matrix_free() ? "matrix-free" : "dense") << " influence): "
            << results.size() << " corners over " << batch.block_count()
            << " blocks, junction limit " << to_celsius(t_limit) << " C\n";
  std::cout << "  V/Vnom  f/fnom  P_dyn_W  P_leak_mW  Tmax_C  verdict\n";

  std::size_t k = 0;
  std::size_t safe = 0;
  bool all_resolved = true;
  for (const double vf : v_fracs) {
    for (const double fs : f_scales) {
      const auto& r = results[k++];
      const bool pass = r.converged && r.max_temperature <= t_limit;
      safe += pass ? 1 : 0;
      all_resolved = all_resolved && (r.converged || r.runaway);
      std::printf("  %6.2f  %6.2f  %7.2f  %9.3f  %6.1f  %s\n", vf, fs, r.total_dynamic,
                  1e3 * r.total_leakage, to_celsius(r.max_temperature),
                  r.runaway                    ? "RUNAWAY"
                  : !r.converged               ? "UNRESOLVED"
                  : r.max_temperature > t_limit ? "over-limit"
                                                : "safe");
    }
  }

  const auto stats = batch.stats();
  std::cout << "  " << safe << "/" << results.size() << " corners safe; "
            << stats.batched_matvecs << " blocked sweeps for "
            << stats.picard_iterations_total << " scenario-iterations ("
            << stats.masked_iterations_saved << " saved by convergence masks)\n";

  // The nominal corner of a sane plan must screen as safe; and every corner
  // must resolve to a definite verdict (converged or flagged runaway).
  const std::size_t nominal = 8;  // vf = 1.0 (3rd of 4), fs = 1.0 (3rd of 3)
  if (!results[nominal].converged || results[nominal].max_temperature > t_limit) {
    std::cerr << "nominal corner failed the screen\n";
    return 1;
  }
  return all_resolved ? 0 : 1;
}
